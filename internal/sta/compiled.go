// Flat, slice-indexed timing core. CompiledGraph interns a design's nets,
// instances and timing arcs into dense int32 IDs once per structural
// revision and keeps every per-net timing quantity (arrival window, worst
// slew, required time, level) in flat []float64/[]int32 state indexed by
// those IDs. The propagate loops walk preallocated per-level buckets and
// perform zero heap allocations (guarded by testing.AllocsPerRun in
// compiled_test.go); the map-keyed Result the rest of the flow consumes is
// materialized (or incrementally patched) from the flat state afterwards.
//
// The arithmetic is exactly the legacy map-based pass's, in the same
// evaluation order, so results are bit-identical to AnalyzeLegacy — the
// retained oracle the differential tests hold this kernel to.
package sta

import (
	"math"

	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/parasitics"
)

// driver kinds per net.
const (
	drvNone uint8 = iota // undriven, clock port, or a non-arrival source
	drvPort              // data primary input: seeded with the external arrival
	drvSeq               // flop Q output
	drvComb              // combinational cell output
)

// required-consumer kinds per net (see reqCons).
const (
	rcOutPort uint8 = iota // output-port endpoint
	rcFlopD                // flop D setup endpoint (idx = seq index)
	rcComb                 // combinational consumer (idx = comb index)
)

// combArc is one flattened timing arc of a combinational instance: the
// fanin net it reads, the sink position resolving its wire delay, and the
// NLDM arc evaluated at the instance's output load.
//
// The c* fields memoize the last table evaluation keyed by its inputs.
// Arc delay is a pure function of (input slew, output load), so a hit
// returns bit-identical values while skipping the two NLDM
// interpolations — the dominant cost of a propagate pass. cSlewIn starts
// NaN, which compares unequal to everything, so a fresh arc always
// misses; rebinding an instance (buildArcs) resets it the same way.
type combArc struct {
	in      int32 // fanin net ID
	sinkPos int32 // index into sinkD[in] (-1: no resolved sink, zero wire delay)
	arc     *liberty.Arc

	cSlewIn, cLoad   float64 // inputs of the memoized evaluation
	cDelay, cSlewOut float64 // its results
}

// eval returns the arc's worst delay and output slew for the given input
// slew and load, through the memo.
func (a *combArc) eval(sIn, load float64) (dm, sm float64) {
	if !(a.cSlewIn == sIn && a.cLoad == load) {
		a.cSlewIn, a.cLoad = sIn, load
		a.cDelay = a.arc.WorstDelay(sIn, load)
		a.cSlewOut = a.arc.WorstSlew(sIn, load)
	}
	return a.cDelay, a.cSlewOut
}

// seqInfo is the compiled view of one sequential instance. The c* fields
// memoize the CK→Q table evaluation; keying on the arc pointer makes a
// cell swap (which changes the cell's arcs) an automatic miss, so the
// live Cell.Arc lookup stays swap-safe.
type seqInfo struct {
	inst     *netlist.Instance
	q        int32 // output (Q) net ID, -1 when unconnected
	dNet     int32 // D input net ID, -1 when unconnected
	dSinkPos int32 // sink position of the D pin on dNet (-1: none)

	cArc            *liberty.Arc
	cClkSlew, cLoad float64
	cDelay, cQSlew  float64
}

// reqConsumer is one required-time candidate source on a net: an output
// port, a flop D pin, or a combinational consumer instance (deduplicated,
// in net-sink order — the same candidate set the legacy backward pass
// min-accumulates).
type reqConsumer struct {
	kind uint8
	idx  int32
}

// flatQueue is the index-based dirty queue: per-level buckets of net IDs
// with an epoch-stamped membership mark, reused across retimes without
// reallocation.
type flatQueue struct {
	buckets [][]int32
	mark    []uint32
	epoch   uint32
}

func (q *flatQueue) init(levels, nets int) {
	q.buckets = make([][]int32, levels)
	q.mark = make([]uint32, nets)
	q.epoch = 0
}

func (q *flatQueue) reset() {
	q.epoch++
	if q.epoch == 0 { // wrapped: marks are ambiguous, clear them
		for i := range q.mark {
			q.mark[i] = 0
		}
		q.epoch = 1
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
}

func (q *flatQueue) push(id, lvl int32) {
	if q.mark[id] == q.epoch {
		return
	}
	q.mark[id] = q.epoch
	q.buckets[lvl] = append(q.buckets[lvl], id)
}

// CompiledGraph is the flat timing graph over one design revision.
type CompiledGraph struct {
	d   *netlist.Design
	cfg Config // normalized

	nets  []*netlist.Net
	netID map[*netlist.Net]int32

	srcPorts []int32 // nets seeded by data input ports, port order
	outPorts []int32 // nets sunk by output ports, port order

	seqs     []seqInfo // sequential instances, instance order
	seqIdx   map[*netlist.Instance]int32
	combs    []*netlist.Instance // comb instances with an output, topo order
	combOut  []int32             // their output net IDs
	combArcs [][]combArc         // their flattened arcs (rebuilt on cell swap)
	combIdx  map[*netlist.Instance]int32

	drvKind []uint8 // per net
	drvIdx  []int32 // seq/comb index for drvSeq/drvComb, else -1

	// Required-time consumers in CSR form: net id's candidates are
	// reqConsArr[reqConsOff[id]:reqConsOff[id+1]], net-sink order,
	// comb-deduplicated. One backing array instead of one slice per net.
	reqConsOff []int32
	reqConsArr []reqConsumer

	level    []int32
	maxLevel int32

	// Per-net state, indexed by net ID. Absent quantities (has* false)
	// keep zeroed values so reads mirror the legacy maps' zero-value
	// semantics bit for bit.
	rc       []*parasitics.RCTree
	trees    []parasitics.RCTree // slab the rc trees are carved from (IntoExtractor path)
	intoEx   parasitics.IntoExtractor
	totalCap []float64
	sinkD    [][]float64 // Elmore delay per sink position, padded to len(Sinks)
	arrMax   []float64
	arrMin   []float64
	slewMax  []float64
	reqMax   []float64
	hasArr   []bool
	hasReq   []bool

	// Endpoint scan results (mirrored into the Result afterwards).
	wns, tns, worstHold float64
	holdBuf             []*netlist.Instance

	// Retime scratch, preallocated once and reused.
	arrQ, reqQ              flatQueue
	arrChanged, reqChanged  []int32
	elmoreDelay, elmoreDown []float64
}

// Compile interns the design into a flat graph at its current structural
// revision. The per-net timing state starts empty; run a full pass
// (runFull) or import prior state (importFrom) before reading results.
func Compile(d *netlist.Design, cfg Config) (*CompiledGraph, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	nets := d.Nets()
	nn := len(nets)
	cg := &CompiledGraph{
		d:       d,
		cfg:     cfg,
		nets:    nets,
		netID:   make(map[*netlist.Net]int32, nn),
		seqIdx:  make(map[*netlist.Instance]int32),
		combIdx: make(map[*netlist.Instance]int32),
		drvKind: make([]uint8, nn),
		drvIdx:  make([]int32, nn),
		level:   make([]int32, nn),

		rc:       make([]*parasitics.RCTree, nn),
		totalCap: make([]float64, nn),
		sinkD:    make([][]float64, nn),
		arrMax:   make([]float64, nn),
		arrMin:   make([]float64, nn),
		slewMax:  make([]float64, nn),
		reqMax:   make([]float64, nn),
		hasArr:   make([]bool, nn),
		hasReq:   make([]bool, nn),
	}
	for i, n := range nets {
		cg.netID[n] = int32(i)
		cg.drvIdx[i] = -1
	}

	// With an in-place extractor, carve every net's RC tree and sink-delay
	// buffer out of shared slabs sized for the common star topology
	// (1 + #sinks nodes). Three-index subslices pin each net's capacity, so
	// an extractor that ever needs more nodes reallocates only its own
	// net's slices. This turns ~6 small allocations per net per full
	// analysis into a handful of slab allocations per compile.
	cg.intoEx, _ = cfg.Extractor.(parasitics.IntoExtractor)
	totalSinks := 0
	for _, n := range nets {
		totalSinks += len(n.Sinks)
	}
	if cg.intoEx != nil {
		totalNodes := nn + totalSinks
		parentSlab := make([]int, totalNodes)
		rkSlab := make([]float64, totalNodes)
		capSlab := make([]float64, totalNodes)
		sinkNodeSlab := make([]int, totalSinks)
		sinkDSlab := make([]float64, totalSinks)
		cg.trees = make([]parasitics.RCTree, nn)
		off, soff := 0, 0
		for i, n := range nets {
			nd := 1 + len(n.Sinks)
			t := &cg.trees[i]
			t.Parent = parentSlab[off : off : off+nd]
			t.RkOhm = rkSlab[off : off : off+nd]
			t.CapPF = capSlab[off : off : off+nd]
			t.SinkNode = sinkNodeSlab[soff : soff : soff+len(n.Sinks)]
			cg.rc[i] = t
			cg.sinkD[i] = sinkDSlab[soff : soff : soff+len(n.Sinks)]
			off += nd
			soff += len(n.Sinks)
		}
	}

	// Ports, in declaration order: data inputs seed arrivals, outputs are
	// required-time endpoints.
	for _, p := range d.Ports() {
		id := cg.netID[p.Net]
		if p.Dir == netlist.DirInput {
			if p.Name != cfg.ClockPort {
				cg.srcPorts = append(cg.srcPorts, id)
				cg.drvKind[id] = drvPort
			}
		} else {
			cg.outPorts = append(cg.outPorts, id)
		}
	}

	// Sequential instances, in instance order.
	for _, inst := range d.Instances() {
		if !inst.Cell.IsSequential() {
			continue
		}
		si := seqInfo{inst: inst, q: -1, dNet: -1, dSinkPos: -1}
		if q := inst.OutputNet(); q != nil {
			si.q = cg.netID[q]
			cg.drvKind[si.q] = drvSeq
			cg.drvIdx[si.q] = int32(len(cg.seqs))
		}
		if dn := inst.Conns["D"]; dn != nil {
			si.dNet = cg.netID[dn]
			si.dSinkPos = sinkPos(dn, inst, "D")
		}
		cg.seqIdx[inst] = int32(len(cg.seqs))
		cg.seqs = append(cg.seqs, si)
	}

	// Combinational instances with an output, in topological order, with
	// levelization (level of a net = 1 + worst level over its driver's
	// fanin nets, exactly the legacy relevel). Arc counts are gathered
	// here so the arcs themselves can be carved from one slab below.
	arcCnt := make([]int32, 0, len(order))
	for _, inst := range order {
		if inst.Cell.IsSequential() {
			continue
		}
		out := inst.OutputNet()
		if out == nil {
			continue
		}
		ci := int32(len(cg.combs))
		oid := cg.netID[out]
		cg.combIdx[inst] = ci
		cg.combs = append(cg.combs, inst)
		cg.combOut = append(cg.combOut, oid)
		cg.drvKind[oid] = drvComb
		cg.drvIdx[oid] = ci
		cnt := int32(0)
		lvl := int32(0)
		for _, arc := range inst.Cell.Arcs {
			inNet := inst.Conns[arc.From]
			if inNet == nil {
				continue
			}
			cnt++
			if l := cg.level[cg.netID[inNet]] + 1; l > lvl {
				lvl = l
			}
		}
		arcCnt = append(arcCnt, cnt)
		cg.level[oid] = lvl
		if lvl > cg.maxLevel {
			cg.maxLevel = lvl
		}
	}
	// Carve each instance's arc list from a single slab with pinned
	// capacity: a later cell swap that grows the list reallocates only
	// that instance's slice.
	totalArcs := int32(0)
	for _, c := range arcCnt {
		totalArcs += c
	}
	arcSlab := make([]combArc, totalArcs)
	cg.combArcs = make([][]combArc, len(cg.combs))
	aoff := int32(0)
	for ci, inst := range cg.combs {
		cg.combArcs[ci] = cg.buildArcs(inst, arcSlab[aoff:aoff:aoff+arcCnt[ci]])
		aoff += arcCnt[ci]
	}

	// Required-time consumers per net, in net-sink order, CSR-packed.
	// Each sink contributes at most one candidate, so totalSinks bounds
	// the packed length and the array never reallocates.
	cg.reqConsOff = make([]int32, nn+1)
	cg.reqConsArr = make([]reqConsumer, 0, totalSinks)
	var seenComb []int32 // small linear dedup, matches legacy's per-call set
	for i, n := range nets {
		seenComb = seenComb[:0]
		for _, s := range n.Sinks {
			switch {
			case s.Port != nil:
				if s.Port.Dir == netlist.DirOutput {
					cg.reqConsArr = append(cg.reqConsArr, reqConsumer{kind: rcOutPort})
				}
			case s.Inst == nil:
				// detached ref: nothing
			case s.Inst.Cell.IsSequential():
				if s.Pin == "D" {
					cg.reqConsArr = append(cg.reqConsArr, reqConsumer{kind: rcFlopD, idx: cg.seqIdx[s.Inst]})
				}
			default:
				ci, ok := cg.combIdx[s.Inst]
				if !ok {
					continue // no output (switch/holder): emits no candidates
				}
				dup := false
				for _, c := range seenComb {
					if c == ci {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seenComb = append(seenComb, ci)
				cg.reqConsArr = append(cg.reqConsArr, reqConsumer{kind: rcComb, idx: ci})
			}
		}
		cg.reqConsOff[i+1] = int32(len(cg.reqConsArr))
	}

	cg.arrQ.init(int(cg.maxLevel)+1, nn)
	cg.reqQ.init(int(cg.maxLevel)+1, nn)
	cg.arrChanged = make([]int32, 0, nn)
	cg.reqChanged = make([]int32, 0, nn)
	return cg, nil
}

// buildArcs flattens one combinational instance's connected timing arcs,
// reusing buf's capacity. Called at compile time and again when a cell
// swap rebinds the instance (the arc pointers and pin set change with the
// cell).
func (cg *CompiledGraph) buildArcs(inst *netlist.Instance, buf []combArc) []combArc {
	buf = buf[:0]
	for _, arc := range inst.Cell.Arcs {
		inNet := inst.Conns[arc.From]
		if inNet == nil {
			continue
		}
		buf = append(buf, combArc{
			in:      cg.netID[inNet],
			sinkPos: sinkPos(inNet, inst, arc.From),
			arc:     arc,
			cSlewIn: math.NaN(), // empty memo
		})
	}
	return buf
}

// consumers returns net id's required-time candidate sources (CSR view).
func (cg *CompiledGraph) consumers(id int32) []reqConsumer {
	return cg.reqConsArr[cg.reqConsOff[id]:cg.reqConsOff[id+1]]
}

// sinkPos returns the first position of (inst, pin) in n.Sinks, or -1 —
// the index legacy sinkWireDelay scans for on every call.
func sinkPos(n *netlist.Net, inst *netlist.Instance, pin string) int32 {
	for i, s := range n.Sinks {
		if s.Inst == inst && s.Pin == pin {
			return int32(i)
		}
	}
	return -1
}

// extract re-runs parasitic extraction for one net and refreshes the
// derived flat state (total cap, per-sink Elmore delays). With an
// IntoExtractor the net's preallocated tree is refilled in place —
// consistent with the Result's documented live-view semantics — so the
// steady-state retime loop allocates nothing.
func (cg *CompiledGraph) extract(id int32) {
	cg.extractWith(id, &cg.elmoreDelay, &cg.elmoreDown)
}

// extractWith is extract with caller-supplied Elmore scratch, so the
// sharded kernel can run per-shard extraction concurrently (each shard
// owns disjoint nets and its own scratch; all other written state —
// rc/totalCap/sinkD — is per-net).
func (cg *CompiledGraph) extractWith(id int32, elmoreDelay, elmoreDown *[]float64) {
	n := cg.nets[id]
	var t *parasitics.RCTree
	if cg.intoEx != nil {
		t = cg.intoEx.ExtractInto(n, cg.rc[id])
	} else {
		t = cg.cfg.Extractor.Extract(n)
		cg.rc[id] = t
	}
	cg.totalCap[id] = t.TotalCap()
	// Per-sink wire delays, padded with zeros past SinkNode exactly like
	// legacy sinkWireDelay's out-of-range fallback.
	nodes := len(t.CapPF)
	if cap(*elmoreDelay) < nodes {
		*elmoreDelay = make([]float64, nodes)
		*elmoreDown = make([]float64, nodes)
	}
	delay := t.ElmoreInto((*elmoreDelay)[:nodes], (*elmoreDown)[:nodes])
	sd := cg.sinkD[id][:0]
	for i := range n.Sinks {
		if i < len(t.SinkNode) {
			sd = append(sd, delay[t.SinkNode[i]])
		} else {
			sd = append(sd, 0)
		}
	}
	cg.sinkD[id] = sd
}

// wireD returns the wire delay for a resolved sink position (0 when the
// sink did not resolve to an RC node).
func (cg *CompiledGraph) wireD(in, pos int32) float64 {
	if pos < 0 || int(pos) >= len(cg.sinkD[in]) {
		return 0
	}
	return cg.sinkD[in][pos]
}

func (cg *CompiledGraph) clkArr(inst *netlist.Instance) float64 {
	if cg.cfg.ClockArrival != nil {
		return cg.cfg.ClockArrival(inst)
	}
	return 0
}

// seqWindow computes a flop's Q arrival and slew (legacy seqArrival).
func (cg *CompiledGraph) seqWindow(si *seqInfo) (arr, slew float64) {
	arc := si.inst.Cell.Arc("CK", "Q")
	var dq, sq float64
	if arc != nil {
		load := cg.totalCap[si.q]
		if !(si.cArc == arc && si.cClkSlew == cg.cfg.ClockSlewNs && si.cLoad == load) {
			si.cArc, si.cClkSlew, si.cLoad = arc, cg.cfg.ClockSlewNs, load
			si.cDelay = arc.WorstDelay(cg.cfg.ClockSlewNs, load)
			si.cQSlew = arc.WorstSlew(cg.cfg.ClockSlewNs, load)
		}
		dq, sq = si.cDelay, si.cQSlew
	}
	return cg.clkArr(si.inst) + dq, sq
}

// combWindow computes a combinational output's arrival window and worst
// slew from its fanin state (legacy combArrival), ok=false when no fanin
// is constrained.
func (cg *CompiledGraph) combWindow(ci int32) (amax, amin, smax float64, ok bool) {
	load := cg.totalCap[cg.combOut[ci]]
	amax = math.Inf(-1)
	amin = math.Inf(1)
	smax = 0.0
	arcs := cg.combArcs[ci]
	for i := range arcs {
		a := &arcs[i]
		if !cg.hasArr[a.in] {
			continue
		}
		wire := cg.wireD(a.in, a.sinkPos)
		dm, sm := a.eval(cg.slewMax[a.in], load)
		amax = math.Max(amax, cg.arrMax[a.in]+wire+dm)
		amin = math.Min(amin, cg.arrMin[a.in]+wire+dm)
		smax = math.Max(smax, sm)
	}
	if math.IsInf(amax, -1) {
		return 0, 0, 0, false
	}
	return amax, amin, smax, true
}

// setArr writes a present arrival window; clearArr removes one (zeroing
// the state so later reads see the legacy maps' zero values).
func (cg *CompiledGraph) setArr(id int32, amax, amin, smax float64) {
	cg.arrMax[id] = amax
	cg.arrMin[id] = amin
	cg.slewMax[id] = smax
	cg.hasArr[id] = true
}

func (cg *CompiledGraph) clearArr(id int32) {
	cg.arrMax[id] = 0
	cg.arrMin[id] = 0
	cg.slewMax[id] = 0
	cg.hasArr[id] = false
}

// forwardFull seeds every arrival source and propagates in topological
// order — the flat propagateArrival.
func (cg *CompiledGraph) forwardFull() {
	for i := range cg.hasArr {
		cg.clearArr(int32(i))
	}
	for _, id := range cg.srcPorts {
		cg.setArr(id, cg.cfg.InputDelayNs, cg.cfg.InputDelayNs, cg.cfg.InputSlewNs)
	}
	for i := range cg.seqs {
		si := &cg.seqs[i]
		if si.q < 0 {
			continue
		}
		arr, slew := cg.seqWindow(si)
		cg.setArr(si.q, arr, arr, slew)
	}
	for ci := range cg.combs {
		if amax, amin, smax, ok := cg.combWindow(int32(ci)); ok {
			cg.setArr(cg.combOut[ci], amax, amin, smax)
		}
	}
}

func (cg *CompiledGraph) outputPortRequired() float64 {
	return cg.cfg.ClockPeriodNs - cg.cfg.OutputDelayNs
}

func (cg *CompiledGraph) flopSetupRequired(si *seqInfo) float64 {
	return cg.cfg.ClockPeriodNs + cg.clkArr(si.inst) - si.inst.Cell.SetupNs
}

func (cg *CompiledGraph) accumReq(id int32, req float64) {
	if !cg.hasReq[id] || req < cg.reqMax[id] {
		cg.reqMax[id] = req
		cg.hasReq[id] = true
	}
}

// backwardFull seeds the endpoint required times and propagates against
// the topological order — the flat propagateRequired.
func (cg *CompiledGraph) backwardFull() {
	for i := range cg.hasReq {
		cg.reqMax[i] = 0
		cg.hasReq[i] = false
	}
	for _, id := range cg.outPorts {
		cg.accumReq(id, cg.outputPortRequired())
	}
	for i := range cg.seqs {
		si := &cg.seqs[i]
		if si.dNet < 0 {
			continue
		}
		cg.accumReq(si.dNet, cg.flopSetupRequired(si))
	}
	for ci := len(cg.combs) - 1; ci >= 0; ci-- {
		out := cg.combOut[ci]
		if !cg.hasReq[out] {
			continue
		}
		req := cg.reqMax[out]
		load := cg.totalCap[out]
		arcs := cg.combArcs[ci]
		for i := range arcs {
			a := &arcs[i]
			dm, _ := a.eval(cg.slewMax[a.in], load)
			cg.accumReq(a.in, req-dm-cg.wireD(a.in, a.sinkPos))
		}
	}
}

// endpointScan recomputes WNS/TNS/WorstHold and the hold-violation list in
// the design's deterministic endpoint order (output ports, then flops) —
// the flat endpointChecks. Scan state lands in cg fields; callers mirror
// it into the Result.
func (cg *CompiledGraph) endpointScan() {
	cg.wns = math.Inf(1)
	cg.worstHold = math.Inf(1)
	cg.tns = 0
	cg.holdBuf = cg.holdBuf[:0]
	check := func(id int32, req float64) {
		if !cg.hasArr[id] {
			return
		}
		s := req - cg.arrMax[id]
		if s < cg.wns {
			cg.wns = s
		}
		if s < 0 {
			cg.tns += s
		}
	}
	for _, id := range cg.outPorts {
		check(id, cg.outputPortRequired())
	}
	for i := range cg.seqs {
		si := &cg.seqs[i]
		if si.dNet < 0 {
			continue
		}
		lat := cg.clkArr(si.inst)
		check(si.dNet, cg.flopSetupRequired(si))
		if cg.hasArr[si.dNet] {
			hs := cg.arrMin[si.dNet] + cg.wireD(si.dNet, si.dSinkPos) - lat - si.inst.Cell.HoldNs
			if hs < cg.worstHold {
				cg.worstHold = hs
			}
			if hs < 0 {
				cg.holdBuf = append(cg.holdBuf, si.inst)
			}
		}
	}
	if math.IsInf(cg.wns, 1) {
		cg.wns = cg.cfg.ClockPeriodNs // no endpoints: trivially met
	}
	if math.IsInf(cg.worstHold, 1) {
		cg.worstHold = 0
	}
}

// runFull extracts every net and runs the three flat passes.
func (cg *CompiledGraph) runFull() {
	for id := range cg.nets {
		cg.extract(int32(id))
	}
	cg.forwardFull()
	cg.backwardFull()
	cg.endpointScan()
}

// materialize builds a fresh map-keyed Result view of the flat state.
func (cg *CompiledGraph) materialize() *Result {
	nn := len(cg.nets)
	r := &Result{
		Config:      cg.cfg,
		ArrivalMax:  make(map[*netlist.Net]float64, nn),
		ArrivalMin:  make(map[*netlist.Net]float64, nn),
		SlewMax:     make(map[*netlist.Net]float64, nn),
		RequiredMax: make(map[*netlist.Net]float64, nn),
		RC:          make(map[*netlist.Net]*parasitics.RCTree, nn),
		design:      cg.d,
	}
	for id, n := range cg.nets {
		r.RC[n] = cg.rc[id]
		if cg.hasArr[id] {
			r.ArrivalMax[n] = cg.arrMax[id]
			r.ArrivalMin[n] = cg.arrMin[id]
			r.SlewMax[n] = cg.slewMax[id]
		}
		if cg.hasReq[id] {
			r.RequiredMax[n] = cg.reqMax[id]
		}
	}
	cg.mirrorEndpoints(r)
	return r
}

// mirrorEndpoints copies the endpoint-scan scalars and hold list into a
// Result, preserving the legacy nil-when-clean hold list shape.
func (cg *CompiledGraph) mirrorEndpoints(r *Result) {
	r.WNS = cg.wns
	r.TNS = cg.tns
	r.WorstHold = cg.worstHold
	if len(cg.holdBuf) == 0 {
		r.HoldViolations = nil
	} else {
		r.HoldViolations = append([]*netlist.Instance(nil), cg.holdBuf...)
	}
}

// recomputeArrival redoes one net's arrival window from its driver kind
// and reports whether presence or value changed (legacy recomputeArrival).
func (cg *CompiledGraph) recomputeArrival(id int32) bool {
	var amax, amin, smax float64
	present := false
	switch cg.drvKind[id] {
	case drvPort:
		amax, amin, smax = cg.cfg.InputDelayNs, cg.cfg.InputDelayNs, cg.cfg.InputSlewNs
		present = true
	case drvSeq:
		si := &cg.seqs[cg.drvIdx[id]]
		arr, slew := cg.seqWindow(si)
		amax, amin, smax = arr, arr, slew
		present = true
	case drvComb:
		amax, amin, smax, present = cg.combWindow(cg.drvIdx[id])
	}
	if present == cg.hasArr[id] && (!present ||
		(cg.arrMax[id] == amax && cg.arrMin[id] == amin && cg.slewMax[id] == smax)) {
		return false
	}
	if present {
		cg.setArr(id, amax, amin, smax)
	} else {
		cg.clearArr(id)
	}
	return true
}

// recomputeRequired redoes one net's required time from its endpoint and
// consumer candidates and reports whether it changed (legacy
// recomputeRequired, over the compiled candidate list).
func (cg *CompiledGraph) recomputeRequired(id int32) bool {
	req := math.Inf(1)
	present := false
	for _, c := range cg.consumers(id) {
		switch c.kind {
		case rcOutPort:
			if r := cg.outputPortRequired(); r < req {
				req = r
			}
			present = true
		case rcFlopD:
			if r := cg.flopSetupRequired(&cg.seqs[c.idx]); r < req {
				req = r
			}
			present = true
		case rcComb:
			out := cg.combOut[c.idx]
			if !cg.hasReq[out] {
				continue
			}
			outReq := cg.reqMax[out]
			load := cg.totalCap[out]
			arcs := cg.combArcs[c.idx]
			for i := range arcs {
				a := &arcs[i]
				if a.in != id {
					continue
				}
				dm, _ := a.eval(cg.slewMax[id], load)
				if r := outReq - dm - cg.wireD(id, a.sinkPos); r < req {
					req = r
				}
				present = true
			}
		}
	}
	if present == cg.hasReq[id] && (!present || cg.reqMax[id] == req) {
		return false
	}
	if present {
		cg.reqMax[id] = req
		cg.hasReq[id] = true
	} else {
		cg.reqMax[id] = 0
		cg.hasReq[id] = false
	}
	return true
}

// seedDriverFanins marks the fanin nets of a net's combinational driver
// required-dirty (their required times read both its required time and
// its load).
func (cg *CompiledGraph) seedDriverFanins(id int32) {
	if cg.drvKind[id] != drvComb {
		return
	}
	for _, a := range cg.combArcs[cg.drvIdx[id]] {
		cg.reqQ.push(a.in, cg.level[a.in])
	}
}

// seedRetime re-extracts one touched net and marks the cones its new RC
// invalidates, mirroring the legacy retime seeding: the net itself both
// ways, every combinational sink's output forward, and the driver's
// fanins backward.
func (cg *CompiledGraph) seedRetime(id int32) {
	cg.extract(id)
	cg.arrQ.push(id, cg.level[id])
	cg.reqQ.push(id, cg.level[id])
	for _, c := range cg.consumers(id) {
		if c.kind == rcComb {
			out := cg.combOut[c.idx]
			cg.arrQ.push(out, cg.level[out])
		}
	}
	cg.seedDriverFanins(id)
}

// flowArrival drains the forward dirty queue by ascending level; a net
// whose recomputed window is bit-identical stops the wave. Changed nets
// are appended to arrChanged (and made required-dirty). This is the
// zero-allocation forward inner loop.
func (cg *CompiledGraph) flowArrival(retimed *int) {
	for lvl := 0; lvl < len(cg.arrQ.buckets); lvl++ {
		// The bucket may grow while being walked (fanout at a later index
		// of the same level is impossible, but fanout pushes to higher
		// levels; same-level pushes come only from re-seeding at this
		// level). Index-walk so appends stay visible.
		for bi := 0; bi < len(cg.arrQ.buckets[lvl]); bi++ {
			id := cg.arrQ.buckets[lvl][bi]
			*retimed++
			if !cg.recomputeArrival(id) {
				continue
			}
			cg.arrChanged = append(cg.arrChanged, id)
			cg.reqQ.push(id, cg.level[id]) // its slew feeds backward delays
			for _, c := range cg.consumers(id) {
				if c.kind == rcComb {
					out := cg.combOut[c.idx]
					cg.arrQ.push(out, cg.level[out])
				}
			}
		}
	}
}

// flowRequired drains the backward dirty queue by descending level —
// the zero-allocation backward inner loop.
func (cg *CompiledGraph) flowRequired() {
	for lvl := len(cg.reqQ.buckets) - 1; lvl >= 0; lvl-- {
		for bi := 0; bi < len(cg.reqQ.buckets[lvl]); bi++ {
			id := cg.reqQ.buckets[lvl][bi]
			if !cg.recomputeRequired(id) {
				continue
			}
			cg.reqChanged = append(cg.reqChanged, id)
			cg.seedDriverFanins(id)
		}
	}
}

// importFrom carries per-net timing state over from a previous
// compilation of the same design (an earlier structural revision). Nets
// new to this graph keep zeroed (absent) state; the caller re-seeds every
// journaled net afterwards, so only genuinely unchanged state survives
// the recompile.
func (cg *CompiledGraph) importFrom(old *CompiledGraph) {
	for id, n := range cg.nets {
		oid, ok := old.netID[n]
		if !ok {
			continue
		}
		cg.rc[id] = old.rc[oid]
		cg.totalCap[id] = old.totalCap[oid]
		cg.sinkD[id] = old.sinkD[oid]
		cg.arrMax[id] = old.arrMax[oid]
		cg.arrMin[id] = old.arrMin[oid]
		cg.slewMax[id] = old.slewMax[oid]
		cg.reqMax[id] = old.reqMax[oid]
		cg.hasArr[id] = old.hasArr[oid]
		cg.hasReq[id] = old.hasReq[oid]
	}
}

// repropagateAll re-runs the incremental propagate loops over every net
// (no extraction, no map patching): the direct subject of the
// zero-allocation guards in compiled_test.go.
func (cg *CompiledGraph) repropagateAll() int {
	cg.arrQ.reset()
	cg.reqQ.reset()
	cg.arrChanged = cg.arrChanged[:0]
	cg.reqChanged = cg.reqChanged[:0]
	for id := range cg.nets {
		cg.arrQ.push(int32(id), cg.level[id])
		cg.reqQ.push(int32(id), cg.level[id])
	}
	retimed := 0
	cg.flowArrival(&retimed)
	cg.flowRequired()
	cg.endpointScan()
	return retimed
}
