// Package sta is the static timing engine: levelized max/min arrival
// propagation with NLDM table lookups and Elmore interconnect, setup and
// hold checks against a (possibly skewed) clock, per-instance slack and
// worst-path extraction. Every assignment step of the Selective-MT flow
// (Dual-Vth, MT selection, switch clustering, ECO) queries this engine.
//
// The hot path runs on the flat slice-indexed CompiledGraph (compiled.go);
// the map-keyed Result here is a thin view materialized from the flat
// state so downstream consumers (dualvth, eco, mcmm, the pipeline stages)
// keep their pointer-keyed API. AnalyzeLegacy (legacy.go) retains the
// original map-based pass as the bit-exactness oracle.
package sta

import (
	"fmt"
	"math"
	"sort"

	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/parasitics"
)

// Config parameterizes a timing run.
type Config struct {
	ClockPeriodNs float64
	ClockPort     string  // name of the primary clock input
	InputDelayNs  float64 // external arrival at non-clock primary inputs
	OutputDelayNs float64 // external required-time margin at primary outputs
	InputSlewNs   float64 // slew presented by primary inputs
	Extractor     parasitics.Extractor
	// ClockArrival returns each flop's clock insertion delay (from CTS).
	// nil means an ideal clock with zero skew.
	ClockArrival func(*netlist.Instance) float64
	// ClockSlewNs is the slew at flop clock pins (post-CTS).
	ClockSlewNs float64

	// Partitions, when > 1, runs Analyze/Incremental on the sharded
	// kernel: the design is clustered (internal/partition) into about
	// this many shards and propagation fans out per shard, iterating the
	// cross-shard interface graph to a fixed point. Results are
	// bit-identical to the monolithic kernel at any worker count.
	Partitions int
	// ShardJobs bounds the sharded kernel's fan-out width (<= 0 means
	// GOMAXPROCS; always clamped to the shard count). At 1 the sharded
	// path stays on the calling goroutine and allocates nothing.
	ShardJobs int
	// ShardRun, when set, runs a sharded fan-out of `tasks` tasks on an
	// external scheduler (internal/core wires the flow engine's pool in
	// here; sta cannot import engine). nil uses an internal worker group.
	// Implementations must call run(t) exactly once for every t in
	// [0, tasks) and return only after all calls complete.
	ShardRun func(tasks, workers int, run func(task int))

	// shardAssign overrides the clustering pass with an explicit
	// instance-to-shard assignment of shardCount shards — the property
	// tests' hook for adversarially random cuts.
	shardAssign func(*netlist.Instance) int32
	shardCount  int
}

// Result is a completed timing analysis.
type Result struct {
	Config Config

	// ArrivalMax/ArrivalMin are the latest/earliest signal arrivals at
	// each net's driver output, ns.
	ArrivalMax map[*netlist.Net]float64
	ArrivalMin map[*netlist.Net]float64
	// SlewMax is the worst slew at each net's driver output.
	SlewMax map[*netlist.Net]float64
	// RequiredMax is the latest allowed arrival at each net.
	RequiredMax map[*netlist.Net]float64
	// RC holds the extracted parasitics used.
	RC map[*netlist.Net]*parasitics.RCTree

	WNS float64 // worst negative slack (positive = met), setup
	TNS float64 // total negative slack, setup
	// WorstHold is the worst hold slack over all flops.
	WorstHold float64
	// HoldViolations lists flops with negative hold slack.
	HoldViolations []*netlist.Instance

	// Revision is the design's change-journal revision this result
	// reflects (netlist.Design.Revision at analysis time). A caller
	// holding a Result can compare it against the design's current
	// revision to detect staleness without re-analyzing.
	Revision uint64

	design *netlist.Design
}

// Design returns the design the result was computed on.
func (r *Result) Design() *netlist.Design { return r.design }

// Slack returns the setup slack of a net (required - arrival); +Inf for
// nets with no constrained fanout cone.
func (r *Result) Slack(n *netlist.Net) float64 {
	req, ok := r.RequiredMax[n]
	if !ok {
		return math.Inf(1)
	}
	return req - r.ArrivalMax[n]
}

// InstSlack returns the setup slack of an instance's output net.
func (r *Result) InstSlack(inst *netlist.Instance) float64 {
	out := inst.OutputNet()
	if out == nil {
		return math.Inf(1)
	}
	return r.Slack(out)
}

// normalizeConfig validates a timing config and fills slew defaults.
func normalizeConfig(cfg Config) (Config, error) {
	if cfg.ClockPeriodNs <= 0 {
		return cfg, fmt.Errorf("sta: clock period %v must be positive", cfg.ClockPeriodNs)
	}
	if cfg.Extractor == nil {
		return cfg, fmt.Errorf("sta: no parasitic extractor")
	}
	if cfg.InputSlewNs <= 0 {
		cfg.InputSlewNs = 0.05
	}
	if cfg.ClockSlewNs <= 0 {
		cfg.ClockSlewNs = 0.04
	}
	return cfg, nil
}

// Analyze runs full setup and hold analysis on the flat compiled kernel.
// Results are bit-identical to AnalyzeLegacy.
//
// The design is interned once per (revision, clock port, extractor):
// repeat analyses of an unchanged design — including at a different
// period, external delays or clock-arrival model — reuse the compiled
// graph and re-run only the flat numeric passes. Staleness detection
// rides on the same change-journal revision contract Incremental uses,
// so out-of-journal mutations need a NoteBulkEdit just as they do there.
func Analyze(d *netlist.Design, cfg Config) (*Result, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	parts := 0
	if cfg.Partitions > 1 {
		parts = cfg.Partitions
	}
	// The shardAssign test hook imposes a different cut per call, so its
	// graphs must never be cached or reused.
	hooked := cfg.shardAssign != nil
	if !hooked {
		if e := takeCompiled(d, cfg.ClockPort, cfg.Extractor, parts); e != nil {
			if e.rev == d.Revision() {
				r := e.refresh(cfg)
				storeCompiled(e)
				return r, nil
			}
			// Stale revision: drop the entry and recompile below.
		}
	}
	cg, err := Compile(d, cfg)
	if err != nil {
		return nil, err
	}
	var sg *ShardedGraph
	if parts > 0 || hooked {
		sg, err = buildSharded(cg, cfg)
		if err != nil {
			return nil, err
		}
		sg.runFull()
	} else {
		cg.runFull()
	}
	res := cg.materialize()
	res.Revision = d.Revision()
	if hooked {
		return res, nil
	}
	storeCompiled(&cacheEntry{
		d: d, rev: res.Revision, clockPort: cfg.ClockPort,
		extractor: cfg.Extractor, partitions: parts, cg: cg, sg: sg, res: res,
	})
	return res.snapshot(), nil
}

// clkArr returns a flop's clock insertion delay under the result's config.
func (r *Result) clkArr(inst *netlist.Instance) float64 {
	if r.Config.ClockArrival != nil {
		return r.Config.ClockArrival(inst)
	}
	return 0
}

// CriticalInstances returns the instances whose output slack is below the
// margin, i.e. the gates the MT assignment must keep fast.
func (r *Result) CriticalInstances(marginNs float64) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range r.design.Instances() {
		if inst.Cell.Kind == liberty.KindSwitch || inst.Cell.Kind == liberty.KindHolder {
			continue
		}
		if r.InstSlack(inst) < marginNs {
			out = append(out, inst)
		}
	}
	return out
}

// PathStep is one instance along a timing path.
type PathStep struct {
	Inst     *netlist.Instance
	Net      *netlist.Net
	ArriveNs float64
}

// Path is an extracted worst path.
type Path struct {
	Steps   []PathStep
	SlackNs float64
}

// WorstPaths extracts up to k worst setup paths by backtracking the max
// arrival from the worst endpoints.
func (r *Result) WorstPaths(k int) []Path {
	type endpoint struct {
		net   *netlist.Net
		slack float64
	}
	var eps []endpoint
	T := r.Config.ClockPeriodNs
	clkArr := func(inst *netlist.Instance) float64 {
		if r.Config.ClockArrival != nil {
			return r.Config.ClockArrival(inst)
		}
		return 0
	}
	for _, p := range r.design.Ports() {
		if p.Dir != netlist.DirOutput {
			continue
		}
		if arr, ok := r.ArrivalMax[p.Net]; ok {
			eps = append(eps, endpoint{p.Net, T - r.Config.OutputDelayNs - arr})
		}
	}
	for _, inst := range r.design.Instances() {
		if !inst.Cell.IsSequential() {
			continue
		}
		if dNet := inst.Conns["D"]; dNet != nil {
			if arr, ok := r.ArrivalMax[dNet]; ok {
				eps = append(eps, endpoint{dNet, T + clkArr(inst) - inst.Cell.SetupNs - arr})
			}
		}
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].slack < eps[j].slack })
	if k > len(eps) {
		k = len(eps)
	}
	var paths []Path
	for i := 0; i < k; i++ {
		paths = append(paths, r.backtrack(eps[i].net, eps[i].slack))
	}
	return paths
}

// backtrack walks the max-arrival predecessors from a net to a source.
func (r *Result) backtrack(n *netlist.Net, slack float64) Path {
	p := Path{SlackNs: slack}
	cur := n
	for steps := 0; steps < 10000; steps++ {
		drv := cur.Driver.Inst
		p.Steps = append(p.Steps, PathStep{Inst: drv, Net: cur, ArriveNs: r.ArrivalMax[cur]})
		if drv == nil || drv.Cell.IsSequential() {
			break
		}
		// Find the input pin that set the max arrival.
		load := r.RC[cur].TotalCap()
		var bestNet *netlist.Net
		bestErr := math.Inf(1)
		for _, arc := range drv.Cell.Arcs {
			inNet := drv.Conns[arc.From]
			if inNet == nil {
				continue
			}
			inArr, ok := r.ArrivalMax[inNet]
			if !ok {
				continue
			}
			wireMax, _ := sinkWireDelay(r.RC[inNet], inNet, drv, arc.From)
			cand := inArr + wireMax + arc.WorstDelay(r.SlewMax[inNet], load)
			if e := math.Abs(cand - r.ArrivalMax[cur]); e < bestErr {
				bestErr, bestNet = e, inNet
			}
		}
		if bestNet == nil {
			break
		}
		cur = bestNet
	}
	// Reverse: source first.
	for i, j := 0, len(p.Steps)-1; i < j; i, j = i+1, j-1 {
		p.Steps[i], p.Steps[j] = p.Steps[j], p.Steps[i]
	}
	return p
}

// MinPeriod estimates the smallest feasible clock period by analyzing at a
// reference period and shifting by the worst slack.
func MinPeriod(d *netlist.Design, cfg Config) (float64, error) {
	if cfg.ClockPeriodNs <= 0 {
		cfg.ClockPeriodNs = 100
	}
	r, err := Analyze(d, cfg)
	if err != nil {
		return 0, err
	}
	return cfg.ClockPeriodNs - r.WNS, nil
}
