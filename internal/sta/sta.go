// Package sta is the static timing engine: levelized max/min arrival
// propagation with NLDM table lookups and Elmore interconnect, setup and
// hold checks against a (possibly skewed) clock, per-instance slack and
// worst-path extraction. Every assignment step of the Selective-MT flow
// (Dual-Vth, MT selection, switch clustering, ECO) queries this engine.
package sta

import (
	"fmt"
	"math"
	"sort"

	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/parasitics"
)

// Config parameterizes a timing run.
type Config struct {
	ClockPeriodNs float64
	ClockPort     string  // name of the primary clock input
	InputDelayNs  float64 // external arrival at non-clock primary inputs
	OutputDelayNs float64 // external required-time margin at primary outputs
	InputSlewNs   float64 // slew presented by primary inputs
	Extractor     parasitics.Extractor
	// ClockArrival returns each flop's clock insertion delay (from CTS).
	// nil means an ideal clock with zero skew.
	ClockArrival func(*netlist.Instance) float64
	// ClockSlewNs is the slew at flop clock pins (post-CTS).
	ClockSlewNs float64
}

// Result is a completed timing analysis.
type Result struct {
	Config Config

	// ArrivalMax/ArrivalMin are the latest/earliest signal arrivals at
	// each net's driver output, ns.
	ArrivalMax map[*netlist.Net]float64
	ArrivalMin map[*netlist.Net]float64
	// SlewMax is the worst slew at each net's driver output.
	SlewMax map[*netlist.Net]float64
	// RequiredMax is the latest allowed arrival at each net.
	RequiredMax map[*netlist.Net]float64
	// RC holds the extracted parasitics used.
	RC map[*netlist.Net]*parasitics.RCTree

	WNS float64 // worst negative slack (positive = met), setup
	TNS float64 // total negative slack, setup
	// WorstHold is the worst hold slack over all flops.
	WorstHold float64
	// HoldViolations lists flops with negative hold slack.
	HoldViolations []*netlist.Instance

	// Revision is the design's change-journal revision this result
	// reflects (netlist.Design.Revision at analysis time). A caller
	// holding a Result can compare it against the design's current
	// revision to detect staleness without re-analyzing.
	Revision uint64

	design *netlist.Design
}

// Design returns the design the result was computed on.
func (r *Result) Design() *netlist.Design { return r.design }

// Slack returns the setup slack of a net (required - arrival); +Inf for
// nets with no constrained fanout cone.
func (r *Result) Slack(n *netlist.Net) float64 {
	req, ok := r.RequiredMax[n]
	if !ok {
		return math.Inf(1)
	}
	return req - r.ArrivalMax[n]
}

// InstSlack returns the setup slack of an instance's output net.
func (r *Result) InstSlack(inst *netlist.Instance) float64 {
	out := inst.OutputNet()
	if out == nil {
		return math.Inf(1)
	}
	return r.Slack(out)
}

// normalizeConfig validates a timing config and fills slew defaults.
func normalizeConfig(cfg Config) (Config, error) {
	if cfg.ClockPeriodNs <= 0 {
		return cfg, fmt.Errorf("sta: clock period %v must be positive", cfg.ClockPeriodNs)
	}
	if cfg.Extractor == nil {
		return cfg, fmt.Errorf("sta: no parasitic extractor")
	}
	if cfg.InputSlewNs <= 0 {
		cfg.InputSlewNs = 0.05
	}
	if cfg.ClockSlewNs <= 0 {
		cfg.ClockSlewNs = 0.04
	}
	return cfg, nil
}

// Analyze runs full setup and hold analysis.
func Analyze(d *netlist.Design, cfg Config) (*Result, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Config:      cfg,
		ArrivalMax:  make(map[*netlist.Net]float64, d.NumNets()),
		ArrivalMin:  make(map[*netlist.Net]float64, d.NumNets()),
		SlewMax:     make(map[*netlist.Net]float64, d.NumNets()),
		RequiredMax: make(map[*netlist.Net]float64, d.NumNets()),
		RC:          make(map[*netlist.Net]*parasitics.RCTree, d.NumNets()),
		design:      d,
	}
	for _, n := range d.Nets() {
		r.RC[n] = cfg.Extractor.Extract(n)
	}
	propagateArrival(r, order)
	propagateRequired(r, order)
	endpointChecks(r)
	r.Revision = d.Revision()
	return r, nil
}

// clkArr returns a flop's clock insertion delay under the result's config.
func (r *Result) clkArr(inst *netlist.Instance) float64 {
	if r.Config.ClockArrival != nil {
		return r.Config.ClockArrival(inst)
	}
	return 0
}

// portArrival returns the arrival/slew a primary-input port seeds on its
// net, and ok=false for ports that are not data sources (outputs, the
// clock).
func portArrival(r *Result, p *netlist.Port) (arr, slew float64, ok bool) {
	if p.Dir != netlist.DirInput || p.Name == r.Config.ClockPort {
		return 0, 0, false
	}
	return r.Config.InputDelayNs, r.Config.InputSlewNs, true
}

// seqArrival computes a flop's Q arrival and slew from the clock edge.
// ok=false when the flop has no output net.
func seqArrival(r *Result, inst *netlist.Instance) (q *netlist.Net, arr, slew float64, ok bool) {
	q = inst.OutputNet()
	if q == nil {
		return nil, 0, 0, false
	}
	arc := inst.Cell.Arc("CK", "Q")
	load := r.RC[q].TotalCap()
	var dq, sq float64
	if arc != nil {
		dq = arc.WorstDelay(r.Config.ClockSlewNs, load)
		sq = arc.WorstSlew(r.Config.ClockSlewNs, load)
	}
	return q, r.clkArr(inst) + dq, sq, true
}

// combArrival computes a combinational instance's output arrival window
// and worst slew from its (already computed) fanin arrivals. ok=false
// when the instance has no output net or no constrained fanin.
func combArrival(r *Result, inst *netlist.Instance) (out *netlist.Net, amax, amin, smax float64, ok bool) {
	out = inst.OutputNet()
	if out == nil {
		return nil, 0, 0, 0, false // switches, holders
	}
	load := r.RC[out].TotalCap()
	amax = math.Inf(-1)
	amin = math.Inf(1)
	smax = 0.0
	for _, arc := range inst.Cell.Arcs {
		inNet := inst.Conns[arc.From]
		if inNet == nil {
			continue
		}
		inArrMax, ok := r.ArrivalMax[inNet]
		if !ok {
			continue // unconstrained input
		}
		inArrMin := r.ArrivalMin[inNet]
		inSlew := r.SlewMax[inNet]
		wireMax, wireMin := sinkWireDelay(r.RC[inNet], inNet, inst, arc.From)
		dm := arc.WorstDelay(inSlew, load)
		amax = math.Max(amax, inArrMax+wireMax+dm)
		amin = math.Min(amin, inArrMin+wireMin+dm)
		smax = math.Max(smax, arc.WorstSlew(inSlew, load))
	}
	if math.IsInf(amax, -1) {
		return out, 0, 0, 0, false // no constrained fanin: leave unconstrained
	}
	return out, amax, amin, smax, true
}

// propagateArrival runs the forward pass (max and min together) over the
// whole design. Sources: primary inputs and flop Q outputs.
func propagateArrival(r *Result, order []*netlist.Instance) {
	d := r.design
	for _, p := range d.Ports() {
		if arr, slew, ok := portArrival(r, p); ok {
			r.ArrivalMax[p.Net] = arr
			r.ArrivalMin[p.Net] = arr
			r.SlewMax[p.Net] = slew
		}
	}
	for _, inst := range d.Instances() {
		if !inst.Cell.IsSequential() {
			continue
		}
		if q, arr, slew, ok := seqArrival(r, inst); ok {
			r.ArrivalMax[q] = arr
			r.ArrivalMin[q] = arr
			r.SlewMax[q] = slew
		}
	}
	// Combinational instances in topological order.
	for _, inst := range order {
		if inst.Cell.IsSequential() {
			continue
		}
		if out, amax, amin, smax, ok := combArrival(r, inst); ok {
			r.ArrivalMax[out] = amax
			r.ArrivalMin[out] = amin
			r.SlewMax[out] = smax
		}
	}
}

// outputPortRequired is the required time an output port imposes on its
// net. Shared by the full backward pass, the incremental recompute and
// the endpoint checks so the three always agree bit for bit.
func outputPortRequired(r *Result) float64 {
	return r.Config.ClockPeriodNs - r.Config.OutputDelayNs
}

// flopSetupRequired is the required time a flop's setup check imposes on
// its D net.
func flopSetupRequired(r *Result, inst *netlist.Instance) float64 {
	return r.Config.ClockPeriodNs + r.clkArr(inst) - inst.Cell.SetupNs
}

// backwardCands visits every required-time candidate a combinational
// instance pushes onto its fanin nets: req(output) minus the arc delay at
// the output load minus the input wire delay. It is the single source of
// the backward-pass arithmetic for both the full pass and the incremental
// recompute.
func backwardCands(r *Result, inst *netlist.Instance, visit func(inNet *netlist.Net, cand float64)) {
	out := inst.OutputNet()
	if out == nil {
		return
	}
	req, ok := r.RequiredMax[out]
	if !ok {
		return
	}
	load := r.RC[out].TotalCap()
	for _, arc := range inst.Cell.Arcs {
		inNet := inst.Conns[arc.From]
		if inNet == nil {
			continue
		}
		inSlew := r.SlewMax[inNet]
		wireMax, _ := sinkWireDelay(r.RC[inNet], inNet, inst, arc.From)
		visit(inNet, req-arc.WorstDelay(inSlew, load)-wireMax)
	}
}

// propagateRequired runs the backward pass: endpoint required times, then
// propagation against the topological order. RequiredMax must be empty on
// entry.
func propagateRequired(r *Result, order []*netlist.Instance) {
	d := r.design
	// Initialize endpoint requireds.
	for _, p := range d.Ports() {
		if p.Dir != netlist.DirOutput {
			continue
		}
		setRequired(r, p.Net, outputPortRequired(r))
	}
	for _, inst := range d.Instances() {
		if !inst.Cell.IsSequential() {
			continue
		}
		dNet := inst.Conns["D"]
		if dNet == nil {
			continue
		}
		setRequired(r, dNet, flopSetupRequired(r, inst))
	}
	// Propagate requireds backward through the topological order.
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if inst.Cell.IsSequential() {
			continue
		}
		backwardCands(r, inst, func(inNet *netlist.Net, cand float64) {
			setRequired(r, inNet, cand)
		})
	}
}

// endpointChecks recomputes WNS/TNS, the worst hold slack and the hold
// violation list from the current arrival maps. It scans endpoints in the
// design's deterministic iteration order, so repeated recomputation (the
// incremental timer runs it after every update) accumulates TNS in exactly
// the order a from-scratch Analyze would.
func endpointChecks(r *Result) {
	d := r.design
	T := r.Config.ClockPeriodNs
	r.WNS = math.Inf(1)
	r.WorstHold = math.Inf(1)
	r.HoldViolations = nil
	r.TNS = 0
	check := func(n *netlist.Net, req float64) {
		arr, ok := r.ArrivalMax[n]
		if !ok {
			return
		}
		s := req - arr
		if s < r.WNS {
			r.WNS = s
		}
		if s < 0 {
			r.TNS += s
		}
	}
	for _, p := range d.Ports() {
		if p.Dir == netlist.DirOutput {
			check(p.Net, outputPortRequired(r))
		}
	}
	for _, inst := range d.Instances() {
		if !inst.Cell.IsSequential() {
			continue
		}
		dNet := inst.Conns["D"]
		if dNet == nil {
			continue
		}
		lat := r.clkArr(inst)
		check(dNet, flopSetupRequired(r, inst))
		// Hold check at this flop.
		if am, ok := r.ArrivalMin[dNet]; ok {
			wireMin := minWireDelayTo(r.RC[dNet], dNet, inst, "D")
			hs := am + wireMin - lat - inst.Cell.HoldNs
			if hs < r.WorstHold {
				r.WorstHold = hs
			}
			if hs < 0 {
				r.HoldViolations = append(r.HoldViolations, inst)
			}
		}
	}
	if math.IsInf(r.WNS, 1) {
		r.WNS = T // no endpoints: trivially met
	}
	if math.IsInf(r.WorstHold, 1) {
		r.WorstHold = 0
	}
}

func setRequired(r *Result, n *netlist.Net, req float64) {
	if cur, ok := r.RequiredMax[n]; !ok || req < cur {
		r.RequiredMax[n] = req
	}
}

// sinkWireDelay returns the (max, min) Elmore delay from a net's driver to
// the given instance pin. Max and min coincide in the Elmore model; both
// are returned for interface clarity.
func sinkWireDelay(rc *parasitics.RCTree, n *netlist.Net, inst *netlist.Instance, pin string) (float64, float64) {
	if rc == nil {
		return 0, 0
	}
	for i, s := range n.Sinks {
		if s.Inst == inst && s.Pin == pin {
			if i < len(rc.SinkNode) {
				d := rc.ElmoreDelays()[rc.SinkNode[i]]
				return d, d
			}
		}
	}
	return 0, 0
}

func minWireDelayTo(rc *parasitics.RCTree, n *netlist.Net, inst *netlist.Instance, pin string) float64 {
	d, _ := sinkWireDelay(rc, n, inst, pin)
	return d
}

// CriticalInstances returns the instances whose output slack is below the
// margin, i.e. the gates the MT assignment must keep fast.
func (r *Result) CriticalInstances(marginNs float64) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range r.design.Instances() {
		if inst.Cell.Kind == liberty.KindSwitch || inst.Cell.Kind == liberty.KindHolder {
			continue
		}
		if r.InstSlack(inst) < marginNs {
			out = append(out, inst)
		}
	}
	return out
}

// PathStep is one instance along a timing path.
type PathStep struct {
	Inst     *netlist.Instance
	Net      *netlist.Net
	ArriveNs float64
}

// Path is an extracted worst path.
type Path struct {
	Steps   []PathStep
	SlackNs float64
}

// WorstPaths extracts up to k worst setup paths by backtracking the max
// arrival from the worst endpoints.
func (r *Result) WorstPaths(k int) []Path {
	type endpoint struct {
		net   *netlist.Net
		slack float64
	}
	var eps []endpoint
	T := r.Config.ClockPeriodNs
	clkArr := func(inst *netlist.Instance) float64 {
		if r.Config.ClockArrival != nil {
			return r.Config.ClockArrival(inst)
		}
		return 0
	}
	for _, p := range r.design.Ports() {
		if p.Dir != netlist.DirOutput {
			continue
		}
		if arr, ok := r.ArrivalMax[p.Net]; ok {
			eps = append(eps, endpoint{p.Net, T - r.Config.OutputDelayNs - arr})
		}
	}
	for _, inst := range r.design.Instances() {
		if !inst.Cell.IsSequential() {
			continue
		}
		if dNet := inst.Conns["D"]; dNet != nil {
			if arr, ok := r.ArrivalMax[dNet]; ok {
				eps = append(eps, endpoint{dNet, T + clkArr(inst) - inst.Cell.SetupNs - arr})
			}
		}
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].slack < eps[j].slack })
	if k > len(eps) {
		k = len(eps)
	}
	var paths []Path
	for i := 0; i < k; i++ {
		paths = append(paths, r.backtrack(eps[i].net, eps[i].slack))
	}
	return paths
}

// backtrack walks the max-arrival predecessors from a net to a source.
func (r *Result) backtrack(n *netlist.Net, slack float64) Path {
	p := Path{SlackNs: slack}
	cur := n
	for steps := 0; steps < 10000; steps++ {
		drv := cur.Driver.Inst
		p.Steps = append(p.Steps, PathStep{Inst: drv, Net: cur, ArriveNs: r.ArrivalMax[cur]})
		if drv == nil || drv.Cell.IsSequential() {
			break
		}
		// Find the input pin that set the max arrival.
		load := r.RC[cur].TotalCap()
		var bestNet *netlist.Net
		bestErr := math.Inf(1)
		for _, arc := range drv.Cell.Arcs {
			inNet := drv.Conns[arc.From]
			if inNet == nil {
				continue
			}
			inArr, ok := r.ArrivalMax[inNet]
			if !ok {
				continue
			}
			wireMax, _ := sinkWireDelay(r.RC[inNet], inNet, drv, arc.From)
			cand := inArr + wireMax + arc.WorstDelay(r.SlewMax[inNet], load)
			if e := math.Abs(cand - r.ArrivalMax[cur]); e < bestErr {
				bestErr, bestNet = e, inNet
			}
		}
		if bestNet == nil {
			break
		}
		cur = bestNet
	}
	// Reverse: source first.
	for i, j := 0, len(p.Steps)-1; i < j; i, j = i+1, j-1 {
		p.Steps[i], p.Steps[j] = p.Steps[j], p.Steps[i]
	}
	return p
}

// MinPeriod estimates the smallest feasible clock period by analyzing at a
// reference period and shifting by the worst slack.
func MinPeriod(d *netlist.Design, cfg Config) (float64, error) {
	if cfg.ClockPeriodNs <= 0 {
		cfg.ClockPeriodNs = 100
	}
	r, err := Analyze(d, cfg)
	if err != nil {
		return 0, err
	}
	return cfg.ClockPeriodNs - r.WNS, nil
}
