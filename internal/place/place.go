// Package place computes cell locations: a connectivity-driven global
// placement (iterated weighted-centroid moves with bin-based spreading)
// followed by row legalization. The Selective-MT clustering step consumes
// these locations, so what matters is realistic *locality* — connected
// cells end up near one another — rather than sign-off quality.
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"selectivemt/internal/geom"
	"selectivemt/internal/netlist"
)

// Options controls placement.
type Options struct {
	RowHeightUm float64 // standard-cell row height
	SitePitchUm float64 // legalization grid in x
	TargetUtil  float64 // core utilization (0..1]
	Iterations  int     // global-placement sweeps
	Seed        int64
}

// DefaultOptions returns reasonable placement options for the process row
// geometry.
func DefaultOptions(rowHeight, sitePitch float64) Options {
	return Options{
		RowHeightUm: rowHeight,
		SitePitchUm: sitePitch,
		TargetUtil:  0.70,
		Iterations:  24,
		Seed:        1,
	}
}

// Result reports what the placer did.
type Result struct {
	Core     geom.Rect
	Rows     int
	HPWL     float64 // total half-perimeter wirelength, µm
	Overflow float64 // residual bin overflow after spreading (0 is ideal)
}

// Place assigns positions to every instance of the design and records the
// core region on the design. Ports are pinned around the core boundary.
func Place(d *netlist.Design, opts Options) (*Result, error) {
	if opts.RowHeightUm <= 0 || opts.SitePitchUm <= 0 {
		return nil, fmt.Errorf("place: row geometry must be positive")
	}
	if opts.TargetUtil <= 0 || opts.TargetUtil > 1 {
		return nil, fmt.Errorf("place: utilization %v outside (0,1]", opts.TargetUtil)
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 24
	}
	insts := d.Instances()
	if len(insts) == 0 {
		return nil, fmt.Errorf("place: empty design")
	}

	totalArea := d.TotalArea()
	coreArea := totalArea / opts.TargetUtil
	side := math.Sqrt(coreArea)
	rows := int(math.Ceil(side / opts.RowHeightUm))
	if rows < 1 {
		rows = 1
	}
	height := float64(rows) * opts.RowHeightUm
	width := math.Ceil(coreArea/height/opts.SitePitchUm) * opts.SitePitchUm
	// Site rounding inflates legalized widths beyond raw area; make sure
	// the rows can hold every cell with slack.
	var legalWidth float64
	for _, inst := range insts {
		legalWidth += cellWidth(inst, opts)
	}
	minWidth := math.Ceil(legalWidth/float64(rows)/opts.TargetUtil/opts.SitePitchUm) * opts.SitePitchUm
	if width < minWidth {
		width = minWidth
	}
	core := geom.RectOf(0, 0, width, height)
	d.Core = core

	pinPorts(d, core)

	rng := rand.New(rand.NewSource(opts.Seed))
	// Initial scatter.
	for _, inst := range insts {
		if inst.Fixed && inst.Placed {
			continue
		}
		inst.Pos = geom.Pt(rng.Float64()*width, rng.Float64()*height)
		inst.Placed = true
	}

	ov := globalIterations(d, insts, core, opts, rng)
	legalize(d, insts, core, opts)
	// Global placement moved (nearly) every instance: one bulk-edit mark
	// beats journaling thousands of individual moves.
	d.NoteBulkEdit()
	return &Result{Core: core, Rows: rows, HPWL: HPWL(d), Overflow: ov}, nil
}

// pinPorts distributes ports evenly around the core boundary: inputs on
// the left/top edges, outputs on the right/bottom, preserving order.
func pinPorts(d *netlist.Design, core geom.Rect) {
	var ins, outs []*netlist.Port
	for _, p := range d.Ports() {
		if p.Dir == netlist.DirInput {
			ins = append(ins, p)
		} else {
			outs = append(outs, p)
		}
	}
	for i, p := range ins {
		f := (float64(i) + 0.5) / float64(len(ins))
		p.Pos = geom.Pt(core.Lo.X, core.Lo.Y+f*core.H())
		p.Placed = true
	}
	for i, p := range outs {
		f := (float64(i) + 0.5) / float64(len(outs))
		p.Pos = geom.Pt(core.Hi.X, core.Lo.Y+f*core.H())
		p.Placed = true
	}
}

// endpointPos returns the location of a net endpoint.
func endpointPos(r netlist.PinRef) (geom.Point, bool) {
	if r.Inst != nil {
		return r.Inst.Pos, r.Inst.Placed
	}
	if r.Port != nil {
		return r.Port.Pos, r.Port.Placed
	}
	return geom.Point{}, false
}

// netCenter returns the centroid of a net's endpoints.
func netCenter(n *netlist.Net) (geom.Point, bool) {
	var pts []geom.Point
	if p, ok := endpointPos(n.Driver); ok {
		pts = append(pts, p)
	}
	for _, s := range n.Sinks {
		if p, ok := endpointPos(s); ok {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return geom.Point{}, false
	}
	return geom.Centroid(pts), true
}

func globalIterations(d *netlist.Design, insts []*netlist.Instance, core geom.Rect,
	opts Options, rng *rand.Rand) float64 {
	overflow := 0.0
	for it := 0; it < opts.Iterations; it++ {
		// Attraction: move every cell to the centroid of its nets' centers.
		for _, inst := range insts {
			if inst.Fixed {
				continue
			}
			var acc geom.Point
			var w float64
			// Walk pins in cell declaration order, not map order: the
			// centroid sum is float accumulation, so iteration order leaks
			// into positions and — compounded over sweeps — made placement
			// (and every timing number derived from it) nondeterministic.
			for _, p := range inst.Cell.Pins {
				net := inst.Conns[p.Name]
				if net == nil || net.Degree() > 64 {
					continue // clock/MTE megafanout nets don't drag placement
				}
				if c, ok := netCenter(net); ok {
					acc = acc.Add(c)
					w++
				}
			}
			if w > 0 {
				target := acc.Scale(1 / w)
				// Blend to damp oscillation.
				inst.Pos = core.Clamp(geom.Pt(
					0.5*inst.Pos.X+0.5*target.X,
					0.5*inst.Pos.Y+0.5*target.Y,
				))
			}
		}
		// Spreading: push cells out of overfull bins.
		overflow = spread(insts, core, opts, rng)
	}
	return overflow
}

// spread performs one bin-based spreading pass and returns the remaining
// overflow fraction.
func spread(insts []*netlist.Instance, core geom.Rect, opts Options, rng *rand.Rand) float64 {
	nb := int(math.Ceil(math.Sqrt(float64(len(insts)) / 16)))
	if nb < 2 {
		nb = 2
	}
	bw, bh := core.W()/float64(nb), core.H()/float64(nb)
	cap := make([]float64, nb*nb)
	used := make([]float64, nb*nb)
	members := make([][]*netlist.Instance, nb*nb)
	binOf := func(p geom.Point) int {
		ix := int((p.X - core.Lo.X) / bw)
		iy := int((p.Y - core.Lo.Y) / bh)
		if ix < 0 {
			ix = 0
		}
		if iy < 0 {
			iy = 0
		}
		if ix >= nb {
			ix = nb - 1
		}
		if iy >= nb {
			iy = nb - 1
		}
		return iy*nb + ix
	}
	binCap := bw * bh * opts.TargetUtil * 1.15 // slack above target
	for i := range cap {
		cap[i] = binCap
	}
	for _, inst := range insts {
		b := binOf(inst.Pos)
		used[b] += inst.Cell.AreaUm2
		members[b] = append(members[b], inst)
	}
	totalOver := 0.0
	for b := 0; b < nb*nb; b++ {
		over := used[b] - cap[b]
		if over <= 0 {
			continue
		}
		totalOver += over
		// Move the cells farthest from the bin center to a random
		// neighboring bin until under capacity.
		bx, by := b%nb, b/nb
		c := geom.Pt(core.Lo.X+(float64(bx)+0.5)*bw, core.Lo.Y+(float64(by)+0.5)*bh)
		ms := members[b]
		sort.Slice(ms, func(i, j int) bool {
			return ms[i].Pos.Manhattan(c) > ms[j].Pos.Manhattan(c)
		})
		for _, inst := range ms {
			if used[b] <= cap[b] {
				break
			}
			if inst.Fixed {
				continue
			}
			dx := (rng.Float64() - 0.5) * 2 * bw
			dy := (rng.Float64() - 0.5) * 2 * bh
			// Push outward from the bin center.
			dir := inst.Pos.Sub(c)
			if dir.X == 0 && dir.Y == 0 {
				dir = geom.Pt(dx, dy)
			}
			n := math.Hypot(dir.X, dir.Y)
			if n == 0 {
				n = 1
			}
			step := geom.Pt(dir.X/n*bw+dx*0.3, dir.Y/n*bh+dy*0.3)
			inst.Pos = core.Clamp(inst.Pos.Add(step))
			used[b] -= inst.Cell.AreaUm2
		}
	}
	totalCap := binCap * float64(nb*nb)
	return totalOver / totalCap
}

// legalize snaps cells to rows and sites with a greedy Tetris sweep.
func legalize(d *netlist.Design, insts []*netlist.Instance, core geom.Rect, opts Options) {
	rows := int(core.H() / opts.RowHeightUm)
	if rows < 1 {
		rows = 1
	}
	cursor := make([]float64, rows) // next free x per row
	for i := range cursor {
		cursor[i] = core.Lo.X
	}
	order := make([]*netlist.Instance, len(insts))
	copy(order, insts)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Pos.X < order[j].Pos.X })
	for _, inst := range order {
		if inst.Fixed {
			continue
		}
		w := cellWidth(inst, opts)
		bestRow, bestCost := -1, math.Inf(1)
		for r := 0; r < rows; r++ {
			y := core.Lo.Y + (float64(r)+0.5)*opts.RowHeightUm
			x := math.Max(cursor[r], inst.Pos.X)
			if x+w > core.Hi.X {
				x = core.Hi.X - w
				if x < cursor[r] {
					continue // row full
				}
			}
			cost := math.Abs(y-inst.Pos.Y) + math.Abs(x-inst.Pos.X)
			if cost < bestCost {
				bestCost, bestRow = cost, r
			}
		}
		if bestRow < 0 {
			// All rows nominally full; take the emptiest (the core sizing
			// above guarantees total capacity, this only redistributes).
			bestRow = 0
			for r := 1; r < rows; r++ {
				if cursor[r] < cursor[bestRow] {
					bestRow = r
				}
			}
		}
		r := bestRow
		y := core.Lo.Y + (float64(r)+0.5)*opts.RowHeightUm
		x := math.Max(cursor[r], inst.Pos.X)
		if x+w > core.Hi.X {
			x = math.Max(cursor[r], core.Hi.X-w)
		}
		x = math.Round(x/opts.SitePitchUm) * opts.SitePitchUm
		if x < cursor[r] {
			x = math.Ceil(cursor[r]/opts.SitePitchUm) * opts.SitePitchUm
		}
		if x+w > core.Hi.X+opts.SitePitchUm {
			x = core.Hi.X - w // clamp: never escape the core
		}
		inst.Pos = geom.Pt(x+w/2, y)
		cursor[r] = x + w
		inst.Placed = true
	}
}

func cellWidth(inst *netlist.Instance, opts Options) float64 {
	w := inst.Cell.AreaUm2 / opts.RowHeightUm
	sites := math.Max(1, math.Ceil(w/opts.SitePitchUm))
	return sites * opts.SitePitchUm
}

// HPWL returns the total half-perimeter wirelength over all nets in µm.
func HPWL(d *netlist.Design) float64 {
	var total float64
	for _, n := range d.Nets() {
		total += NetHPWL(n)
	}
	return total
}

// NetHPWL returns one net's half-perimeter wirelength.
func NetHPWL(n *netlist.Net) float64 {
	bb := geom.EmptyRect()
	cnt := 0
	if p, ok := endpointPos(n.Driver); ok {
		bb = bb.Union(geom.Rect{Lo: p, Hi: p})
		cnt++
	}
	for _, s := range n.Sinks {
		if p, ok := endpointPos(s); ok {
			bb = bb.Union(geom.Rect{Lo: p, Hi: p})
			cnt++
		}
	}
	if cnt < 2 {
		return 0
	}
	return bb.HalfPerimeter()
}

// EndpointPositions returns the located endpoints of a net (driver first
// when placed), for the router.
func EndpointPositions(n *netlist.Net) []geom.Point {
	var pts []geom.Point
	if p, ok := endpointPos(n.Driver); ok {
		pts = append(pts, p)
	}
	for _, s := range n.Sinks {
		if p, ok := endpointPos(s); ok {
			pts = append(pts, p)
		}
	}
	return pts
}

// PlaceNear places a new instance (switch, buffer, holder) at the target
// point, snapped to the nearest row and site; existing cells are not moved
// (ECO-style insertion relies on the residual whitespace the target
// utilization leaves).
func PlaceNear(d *netlist.Design, inst *netlist.Instance, target geom.Point, opts Options) {
	core := d.Core
	if core.Empty() || core.Area() == 0 {
		inst.Pos = target
		inst.Placed = true
		d.NotePlacement(inst)
		return
	}
	t := core.Clamp(target)
	row := math.Round((t.Y - core.Lo.Y - opts.RowHeightUm/2) / opts.RowHeightUm)
	y := core.Lo.Y + row*opts.RowHeightUm + opts.RowHeightUm/2
	x := math.Round(t.X/opts.SitePitchUm) * opts.SitePitchUm
	inst.Pos = core.Clamp(geom.Pt(x, y))
	inst.Placed = true
	d.NotePlacement(inst)
}
