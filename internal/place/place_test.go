package place

import (
	"math/rand"
	"testing"

	"selectivemt/internal/geom"
	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/tech"
)

var sharedLib *liberty.Library

func lib(t *testing.T) *liberty.Library {
	t.Helper()
	if sharedLib == nil {
		proc := tech.Default130()
		l, err := liberty.Generate(proc, liberty.DefaultBuildOptions(proc))
		if err != nil {
			t.Fatal(err)
		}
		sharedLib = l
	}
	return sharedLib
}

func opts(t *testing.T) Options {
	proc := tech.Default130()
	return DefaultOptions(proc.RowHeightUm, proc.SitePitchUm)
}

// buildRandomDesign creates a connected random DAG of nGates gates.
func buildRandomDesign(t *testing.T, nGates int, seed int64) *netlist.Design {
	t.Helper()
	l := lib(t)
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("rand", l)
	d.AddPort("in0", netlist.DirInput)
	d.AddPort("in1", netlist.DirInput)
	live := []*netlist.Net{d.NetByName("in0"), d.NetByName("in1")}
	cells := []string{"INV_X1_L", "NAND2_X1_L", "NOR2_X1_L", "BUF_X2_L"}
	for i := 0; i < nGates; i++ {
		c := l.Cell(cells[rng.Intn(len(cells))])
		g, _ := d.NewInstanceAuto("g", c)
		for _, in := range c.Inputs() {
			d.Connect(g, in.Name, live[rng.Intn(len(live))])
		}
		out := d.NewNetAuto("n")
		d.Connect(g, c.Output().Name, out)
		live = append(live, out)
	}
	d.AddPort("out", netlist.DirOutput)
	last, _ := d.NewInstanceAuto("g", l.Cell("BUF_X2_L"))
	d.Connect(last, "A", live[len(live)-1])
	outNet := d.NetByName("out")
	// Rewire: buffer drives the out net.
	d.Connect(last, "Z", outNet)
	return d
}

func TestPlaceBasics(t *testing.T) {
	d := buildRandomDesign(t, 200, 3)
	res, err := Place(d, opts(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Core.Area() <= 0 {
		t.Fatal("empty core")
	}
	// Every instance placed inside the core.
	for _, inst := range d.Instances() {
		if !inst.Placed {
			t.Fatalf("%s not placed", inst.Name)
		}
		if !res.Core.Expand(1e-6).Contains(inst.Pos) {
			t.Fatalf("%s at %v outside core %v", inst.Name, inst.Pos, res.Core)
		}
	}
	// Ports pinned on the boundary.
	for _, p := range d.Ports() {
		if !p.Placed {
			t.Fatalf("port %s not placed", p.Name)
		}
	}
	if res.HPWL <= 0 {
		t.Error("zero HPWL")
	}
	// Core area should reflect the utilization target.
	util := d.TotalArea() / res.Core.Area()
	if util < 0.3 || util > 0.95 {
		t.Errorf("utilization %v far from target", util)
	}
}

func TestPlaceImprovesOverRandom(t *testing.T) {
	d := buildRandomDesign(t, 300, 7)
	o := opts(t)
	o.Iterations = 1
	if _, err := Place(d, o); err != nil {
		t.Fatal(err)
	}
	oneIter := HPWL(d)
	d2 := buildRandomDesign(t, 300, 7)
	o2 := opts(t)
	o2.Iterations = 30
	if _, err := Place(d2, o2); err != nil {
		t.Fatal(err)
	}
	manyIter := HPWL(d2)
	if manyIter >= oneIter {
		t.Errorf("more iterations did not reduce HPWL: %v vs %v", manyIter, oneIter)
	}
}

func TestPlaceRowsAligned(t *testing.T) {
	d := buildRandomDesign(t, 120, 5)
	o := opts(t)
	if _, err := Place(d, o); err != nil {
		t.Fatal(err)
	}
	for _, inst := range d.Instances() {
		// y must sit at a row center.
		rel := (inst.Pos.Y - d.Core.Lo.Y - o.RowHeightUm/2) / o.RowHeightUm
		if diff := rel - float64(int(rel+0.5)); diff > 1e-6 && diff < -1e-6 {
			t.Fatalf("%s y=%v not row aligned", inst.Name, inst.Pos.Y)
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	d := buildRandomDesign(t, 10, 1)
	bad := opts(t)
	bad.RowHeightUm = 0
	if _, err := Place(d, bad); err == nil {
		t.Error("zero row height accepted")
	}
	bad2 := opts(t)
	bad2.TargetUtil = 1.5
	if _, err := Place(d, bad2); err == nil {
		t.Error("util > 1 accepted")
	}
	empty := netlist.New("empty", lib(t))
	if _, err := Place(empty, opts(t)); err == nil {
		t.Error("empty design accepted")
	}
}

func TestNetHPWL(t *testing.T) {
	l := lib(t)
	d := netlist.New("h", l)
	n, _ := d.AddNet("n")
	a, _ := d.AddInstance("a", l.Cell("INV_X1_L"))
	b, _ := d.AddInstance("b", l.Cell("INV_X1_L"))
	d.Connect(a, "ZN", n)
	d.Connect(b, "A", n)
	a.Pos, a.Placed = geom.Pt(0, 0), true
	b.Pos, b.Placed = geom.Pt(3, 4), true
	if got := NetHPWL(n); got != 7 {
		t.Errorf("NetHPWL = %v, want 7", got)
	}
	// Single endpoint → 0.
	d.Disconnect(b, "A")
	if got := NetHPWL(n); got != 0 {
		t.Errorf("single-endpoint HPWL = %v", got)
	}
}

func TestPlaceNear(t *testing.T) {
	d := buildRandomDesign(t, 80, 9)
	o := opts(t)
	if _, err := Place(d, o); err != nil {
		t.Fatal(err)
	}
	sw, _ := d.AddInstance("sw", lib(t).SwitchCells()[0])
	target := d.Core.Center()
	PlaceNear(d, sw, target, o)
	if !sw.Placed {
		t.Fatal("not placed")
	}
	if sw.Pos.Manhattan(target) > o.RowHeightUm+o.SitePitchUm {
		t.Errorf("placed %v, far from target %v", sw.Pos, target)
	}
	if !d.Core.Contains(sw.Pos) {
		t.Error("placed outside core")
	}
	// Out-of-core target clamps.
	PlaceNear(d, sw, geom.Pt(-100, -100), o)
	if !d.Core.Contains(sw.Pos) {
		t.Error("clamp failed")
	}
}

func TestEndpointPositions(t *testing.T) {
	d := buildRandomDesign(t, 30, 13)
	if _, err := Place(d, opts(t)); err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nets() {
		pts := EndpointPositions(n)
		if n.Degree() >= 2 && len(pts) < 2 {
			t.Fatalf("net %s: %d endpoints located, degree %d", n.Name, len(pts), n.Degree())
		}
	}
}

func TestConnectedCellsAreClose(t *testing.T) {
	// Locality sanity: average connected-pair distance must be well below
	// the core diagonal (this is what the clustering step relies on).
	d := buildRandomDesign(t, 400, 21)
	res, err := Place(d, opts(t))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, net := range d.Nets() {
		pts := EndpointPositions(net)
		for i := 1; i < len(pts); i++ {
			sum += pts[0].Manhattan(pts[i])
			n++
		}
	}
	avg := sum / float64(n)
	diag := res.Core.W() + res.Core.H()
	if avg > diag/2.5 {
		t.Errorf("avg connected distance %v vs core half-perimeter %v: no locality", avg, diag)
	}
}
