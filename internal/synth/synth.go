// Package synth is the front of the Fig. 4 flow: it maps generic-gate
// modules onto the library using only low-Vth cells ("physical synthesis
// using low-Vth cells"), decomposing wide gates into 2-input trees, then
// sizes drivers against their loads and buffers high-fanout nets.
package synth

import (
	"fmt"

	"selectivemt/internal/gen"
	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
)

// Options controls mapping and sizing.
type Options struct {
	// ClockPort is the clock input created for DFFs.
	ClockPort string
	// MaxFanout splits data nets with more sinks than this.
	MaxFanout int
	// MaxLoadPerDrive is the pF of load an X1 driver may carry before
	// sizing up.
	MaxLoadPerDrive float64
}

// DefaultOptions returns the options the experiments use.
func DefaultOptions() Options {
	return Options{ClockPort: "clk", MaxFanout: 12, MaxLoadPerDrive: 0.012}
}

// Map synthesizes a generic module into a netlist of low-Vth cells.
func Map(m *gen.Module, lib *liberty.Library, opts Options) (*netlist.Design, error) {
	if opts.ClockPort == "" {
		opts.ClockPort = "clk"
	}
	if opts.MaxFanout <= 1 {
		opts.MaxFanout = 12
	}
	if opts.MaxLoadPerDrive <= 0 {
		opts.MaxLoadPerDrive = 0.012
	}
	d := netlist.New(m.Name, lib)
	mapper := &mapper{m: m, d: d, lib: lib, nets: make([]*netlist.Net, len(m.Nodes))}
	if _, err := d.AddPort(opts.ClockPort, netlist.DirInput); err != nil {
		return nil, err
	}
	d.NetByName(opts.ClockPort).IsClock = true

	// Primary inputs.
	for _, id := range m.Inputs {
		n := m.Nodes[id]
		if _, err := d.AddPort(n.Name, netlist.DirInput); err != nil {
			return nil, err
		}
		mapper.nets[id] = d.NetByName(n.Name)
	}
	// Map every node in ID order (gen modules are built bottom-up, except
	// patched DFF feedback inputs, which is fine because a DFF's input is
	// consumed at connect time after all nodes exist).
	for _, n := range m.Nodes {
		if err := mapper.lower(n, opts); err != nil {
			return nil, err
		}
	}
	// Feedback/patched DFF inputs: connect now.
	if err := mapper.connectFlops(opts); err != nil {
		return nil, err
	}
	// Primary outputs.
	for _, name := range m.OutputNames() {
		id := m.Outputs[name]
		if _, err := d.AddPort(name, netlist.DirOutput); err != nil {
			return nil, err
		}
		outNet := d.NetByName(name)
		src := mapper.nets[id]
		// Tie the internal net to the port with a buffer (ports need a
		// driver; a buffer isolates internal loading like real synthesis
		// output isolation does).
		buf, err := d.NewInstanceAuto("obuf", lib.Cell("BUF_X2_L"))
		if err != nil {
			return nil, err
		}
		if err := d.Connect(buf, "A", src); err != nil {
			return nil, err
		}
		if err := d.Connect(buf, "Z", outNet); err != nil {
			return nil, err
		}
	}
	if err := BufferHighFanout(d, opts.MaxFanout); err != nil {
		return nil, err
	}
	if err := SizeForLoad(d, opts.MaxLoadPerDrive); err != nil {
		return nil, err
	}
	if err := d.Validate(netlist.StrictValidate()); err != nil {
		return nil, fmt.Errorf("synth: mapped netlist invalid: %w", err)
	}
	return d, nil
}

type mapper struct {
	m    *gen.Module
	d    *netlist.Design
	lib  *liberty.Library
	nets []*netlist.Net
	ffs  []ffFixup
}

type ffFixup struct {
	inst *netlist.Instance
	dID  int
}

func (mp *mapper) gate(base string, ins ...*netlist.Net) (*netlist.Net, error) {
	cell := mp.lib.Cell(base + "_X1_L")
	if cell == nil {
		return nil, fmt.Errorf("synth: library lacks %s_X1_L", base)
	}
	inst, err := mp.d.NewInstanceAuto("u", cell)
	if err != nil {
		return nil, err
	}
	pins := cell.Inputs()
	if len(pins) != len(ins) {
		return nil, fmt.Errorf("synth: %s needs %d inputs, got %d", base, len(pins), len(ins))
	}
	for i, in := range ins {
		if err := mp.d.Connect(inst, pins[i].Name, in); err != nil {
			return nil, err
		}
	}
	out := mp.d.NewNetAuto("n")
	if err := mp.d.Connect(inst, cell.Output().Name, out); err != nil {
		return nil, err
	}
	return out, nil
}

// tree reduces a slice of nets with a balanced tree of 2-input gates.
func (mp *mapper) tree(base string, ins []*netlist.Net) (*netlist.Net, error) {
	if len(ins) == 1 {
		return ins[0], nil
	}
	var next []*netlist.Net
	for i := 0; i < len(ins); i += 2 {
		if i+1 == len(ins) {
			next = append(next, ins[i])
			continue
		}
		o, err := mp.gate(base, ins[i], ins[i+1])
		if err != nil {
			return nil, err
		}
		next = append(next, o)
	}
	return mp.tree(base, next)
}

func (mp *mapper) lower(n *gen.Node, opts Options) error {
	switch n.Op {
	case gen.OpInput:
		return nil // handled in Map
	case gen.OpDFF:
		cell := mp.lib.Cell("DFF_X1_L")
		inst, err := mp.d.NewInstanceAuto("ff", cell)
		if err != nil {
			return err
		}
		if err := mp.d.Connect(inst, "CK", mp.d.NetByName(opts.ClockPort)); err != nil {
			return err
		}
		q := mp.d.NewNetAuto("q")
		if err := mp.d.Connect(inst, "Q", q); err != nil {
			return err
		}
		mp.nets[n.ID] = q
		mp.ffs = append(mp.ffs, ffFixup{inst, n.Ins[0]})
		return nil
	case gen.OpNot:
		out, err := mp.gate("INV", mp.nets[n.Ins[0]])
		if err != nil {
			return err
		}
		mp.nets[n.ID] = out
		return nil
	case gen.OpAnd, gen.OpOr, gen.OpXor:
		base := map[gen.Op]string{gen.OpAnd: "AND2", gen.OpOr: "OR2", gen.OpXor: "XOR2"}[n.Op]
		ins := make([]*netlist.Net, len(n.Ins))
		for i, id := range n.Ins {
			if mp.nets[id] == nil {
				return fmt.Errorf("synth: node %d uses unmapped node %d", n.ID, id)
			}
			ins[i] = mp.nets[id]
		}
		out, err := mp.tree(base, ins)
		if err != nil {
			return err
		}
		mp.nets[n.ID] = out
		return nil
	case gen.OpMux:
		// Ins: [sel, a, b]; MUX2 function A*!S + B*S.
		sel := mp.nets[n.Ins[0]]
		a := mp.nets[n.Ins[1]]
		b := mp.nets[n.Ins[2]]
		cell := mp.lib.Cell("MUX2_X1_L")
		inst, err := mp.d.NewInstanceAuto("u", cell)
		if err != nil {
			return err
		}
		if err := mp.d.Connect(inst, "A", a); err != nil {
			return err
		}
		if err := mp.d.Connect(inst, "B", b); err != nil {
			return err
		}
		if err := mp.d.Connect(inst, "S", sel); err != nil {
			return err
		}
		out := mp.d.NewNetAuto("n")
		if err := mp.d.Connect(inst, "Z", out); err != nil {
			return err
		}
		mp.nets[n.ID] = out
		return nil
	}
	return fmt.Errorf("synth: unsupported op %d", n.Op)
}

func (mp *mapper) connectFlops(opts Options) error {
	for _, f := range mp.ffs {
		src := mp.nets[f.dID]
		if src == nil {
			return fmt.Errorf("synth: flop %s input node %d unmapped", f.inst.Name, f.dID)
		}
		if err := mp.d.Connect(f.inst, "D", src); err != nil {
			return err
		}
	}
	return nil
}

// BufferHighFanout splits any non-clock, non-MTE net with more than
// maxFanout sinks by inserting buffers over sink chunks, recursively.
func BufferHighFanout(d *netlist.Design, maxFanout int) error {
	buf := d.Lib.Cell("BUF_X4_L")
	if buf == nil {
		return fmt.Errorf("synth: library lacks BUF_X4_L")
	}
	changed := true
	for rounds := 0; changed && rounds < 16; rounds++ {
		changed = false
		for _, n := range d.Nets() {
			if n.IsClock || n.IsMTE || len(n.Sinks) <= maxFanout {
				continue
			}
			// Move all but maxFanout-1 sinks behind new buffers, in chunks.
			keep := maxFanout - 1
			rest := append([]netlist.PinRef(nil), n.Sinks[keep:]...)
			for start := 0; start < len(rest); start += maxFanout {
				end := start + maxFanout
				if end > len(rest) {
					end = len(rest)
				}
				if _, err := d.InsertBuffer(n, buf, rest[start:end]); err != nil {
					return err
				}
			}
			changed = true
		}
	}
	return nil
}

// SizeForLoad upsizes drivers whose output load exceeds the per-drive
// budget, choosing the smallest drive variant that fits (or the largest
// available).
func SizeForLoad(d *netlist.Design, maxLoadPerDrive float64) error {
	for _, inst := range d.Instances() {
		out := inst.OutputNet()
		if out == nil || inst.Cell.Kind == liberty.KindSwitch {
			continue
		}
		var load float64
		for _, s := range out.Sinks {
			if s.Inst != nil {
				if p := s.Inst.Cell.Pin(s.Pin); p != nil {
					load += p.CapPF
				}
			}
		}
		needed := int(load/maxLoadPerDrive) + 1
		if needed <= inst.Cell.Drive {
			continue
		}
		best := inst.Cell
		for _, dr := range d.Lib.Drives(inst.Cell.Base, inst.Cell.Flavor) {
			if dr >= needed {
				if v := d.Lib.Cell(variantName(inst.Cell, dr)); v != nil {
					best = v
					break
				}
			}
			if v := d.Lib.Cell(variantName(inst.Cell, dr)); v != nil {
				best = v // track largest available
			}
		}
		if best != inst.Cell {
			if err := d.ReplaceCell(inst, best); err != nil {
				return err
			}
		}
	}
	return nil
}

func variantName(c *liberty.Cell, drive int) string {
	return fmt.Sprintf("%s_X%d_%s", c.Base, drive, c.Flavor)
}
