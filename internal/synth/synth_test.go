package synth

import (
	"testing"

	"selectivemt/internal/gen"
	"selectivemt/internal/liberty"
	"selectivemt/internal/logic"
	"selectivemt/internal/netlist"
	"selectivemt/internal/sim"
	"selectivemt/internal/tech"
)

var sharedLib *liberty.Library

func lib(t *testing.T) *liberty.Library {
	t.Helper()
	if sharedLib == nil {
		proc := tech.Default130()
		l, err := liberty.Generate(proc, liberty.DefaultBuildOptions(proc))
		if err != nil {
			t.Fatal(err)
		}
		sharedLib = l
	}
	return sharedLib
}

func TestMapSmallModule(t *testing.T) {
	m := gen.NewModule("t")
	a := m.Input("a")
	b := m.Input("b")
	m.Output("y", m.And(a, b))
	d, err := Map(m, lib(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(netlist.StrictValidate()); err != nil {
		t.Fatal(err)
	}
	// Functional check: y = a & b.
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ a, b, want logic.Value }{
		{logic.V0, logic.V0, logic.V0},
		{logic.V1, logic.V0, logic.V0},
		{logic.V1, logic.V1, logic.V1},
	} {
		s.SetInput("a", c.a)
		s.SetInput("b", c.b)
		s.Eval()
		if got, _ := s.PortValue("y"); got != c.want {
			t.Errorf("AND(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestMapWideGateDecomposes(t *testing.T) {
	m := gen.NewModule("t")
	ins := m.InputBus("i", 7)
	m.Output("y", m.And(ins...))
	d, err := Map(m, lib(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Only 2-input AND cells (plus the output buffer).
	for _, inst := range d.Instances() {
		if inst.Cell.Base == "AND2" && len(inst.Cell.Inputs()) != 2 {
			t.Fatal("wide gate leaked through")
		}
	}
	// Functional: all-ones → 1, any zero → 0.
	s, _ := sim.New(d)
	for i := 0; i < 7; i++ {
		s.SetInput(m.Nodes[ins[i]].Name, logic.V1)
	}
	s.Eval()
	if got, _ := s.PortValue("y"); got != logic.V1 {
		t.Errorf("AND of ones = %v", got)
	}
	s.SetInput("i[3]", logic.V0)
	s.Eval()
	if got, _ := s.PortValue("y"); got != logic.V0 {
		t.Errorf("AND with a zero = %v", got)
	}
}

func TestMapMux(t *testing.T) {
	m := gen.NewModule("t")
	sel := m.Input("s")
	a := m.Input("a")
	b := m.Input("b")
	m.Output("y", m.Mux(sel, a, b))
	d, err := Map(m, lib(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(d)
	s.SetInput("a", logic.V1)
	s.SetInput("b", logic.V0)
	s.SetInput("s", logic.V0)
	s.Eval()
	if got, _ := s.PortValue("y"); got != logic.V1 {
		t.Errorf("mux sel=0 = %v, want a=1", got)
	}
	s.SetInput("s", logic.V1)
	s.Eval()
	if got, _ := s.PortValue("y"); got != logic.V0 {
		t.Errorf("mux sel=1 = %v, want b=0", got)
	}
}

func TestMapSequentialCounter(t *testing.T) {
	m := gen.NewModule("t")
	en := m.Input("en")
	cnt := m.Counter(3, en)
	m.OutputBus("q", cnt)
	d, err := Map(m, lib(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(d)
	s.ResetState(logic.V0)
	s.SetInput("en", logic.V1)
	s.Eval()
	// Count 5 cycles: q should read 5 = 101.
	for i := 0; i < 5; i++ {
		s.Step()
	}
	want := []logic.Value{logic.V1, logic.V0, logic.V1}
	for i, w := range want {
		if got, _ := s.PortValue(m.OutputNames()[i]); got != w {
			t.Errorf("q[%d] = %v, want %v after 5 counts", i, got, w)
		}
	}
}

func TestAllLVTAfterMap(t *testing.T) {
	spec := gen.SmallTest()
	d, err := Map(spec.Module, lib(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range d.Instances() {
		if inst.Cell.Flavor != liberty.FlavorLVT {
			t.Fatalf("%s is %s, flow starts all-LVT", inst.Name, inst.Cell.Flavor)
		}
	}
}

func TestBufferHighFanout(t *testing.T) {
	l := lib(t)
	d := netlist.New("f", l)
	d.AddPort("in", netlist.DirInput)
	drv, _ := d.AddInstance("drv", l.Cell("INV_X1_L"))
	d.Connect(drv, "A", d.NetByName("in"))
	n, _ := d.AddNet("n")
	d.Connect(drv, "ZN", n)
	for i := 0; i < 40; i++ {
		g, _ := d.NewInstanceAuto("g", l.Cell("INV_X1_L"))
		d.Connect(g, "A", n)
		o := d.NewNetAuto("o")
		d.Connect(g, "ZN", o)
	}
	if err := BufferHighFanout(d, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(netlist.StrictValidate()); err != nil {
		t.Fatal(err)
	}
	for _, net := range d.Nets() {
		if len(net.Sinks) > 10 {
			t.Fatalf("net %s still has %d sinks", net.Name, len(net.Sinks))
		}
	}
}

func TestSizeForLoad(t *testing.T) {
	l := lib(t)
	d := netlist.New("s", l)
	d.AddPort("in", netlist.DirInput)
	drv, _ := d.AddInstance("drv", l.Cell("INV_X1_L"))
	d.Connect(drv, "A", d.NetByName("in"))
	n, _ := d.AddNet("n")
	d.Connect(drv, "ZN", n)
	for i := 0; i < 10; i++ {
		g, _ := d.NewInstanceAuto("g", l.Cell("NAND2_X4_L"))
		d.Connect(g, "A", n)
		d.Connect(g, "B", n)
		o := d.NewNetAuto("o")
		d.Connect(g, "ZN", o)
	}
	if err := SizeForLoad(d, 0.012); err != nil {
		t.Fatal(err)
	}
	if d.Instance("drv").Cell.Drive == 1 {
		t.Error("heavily loaded driver not upsized")
	}
}

func TestMapCircuitAB(t *testing.T) {
	for _, spec := range []gen.CircuitSpec{gen.CircuitA(), gen.CircuitB()} {
		d, err := Map(spec.Module, lib(t), DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", spec.Module.Name, err)
		}
		if err := d.Validate(netlist.StrictValidate()); err != nil {
			t.Fatalf("%s: %v", spec.Module.Name, err)
		}
		if _, err := d.TopoOrder(); err != nil {
			t.Fatalf("%s: %v", spec.Module.Name, err)
		}
		if d.NumInstances() < 400 {
			t.Errorf("%s suspiciously small: %d instances", spec.Module.Name, d.NumInstances())
		}
	}
}
