package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomExpr wraps a generated expression for quick.
type randomExpr struct {
	e *Expr
}

var exprVars = []string{"A", "B", "C", "D", "E"}

// Generate implements quick.Generator.
func (randomExpr) Generate(r *rand.Rand, size int) reflect.Value {
	var build func(depth int) *Expr
	build = func(depth int) *Expr {
		if depth <= 0 || r.Intn(5) == 0 {
			if r.Intn(8) == 0 {
				return Const(FromBool(r.Intn(2) == 1))
			}
			return Var(exprVars[r.Intn(len(exprVars))])
		}
		switch r.Intn(4) {
		case 0:
			return Not(build(depth - 1))
		case 1:
			return And(build(depth-1), build(depth-1))
		case 2:
			return Or(build(depth-1), build(depth-1))
		default:
			return Xor(build(depth-1), build(depth-1))
		}
	}
	return reflect.ValueOf(randomExpr{build(4)})
}

func randomEnv(r *rand.Rand) map[string]Value {
	env := make(map[string]Value, len(exprVars))
	for _, v := range exprVars {
		env[v] = FromBool(r.Intn(2) == 1)
	}
	return env
}

// TestQuickDoubleNegation: !!e ≡ e under any binary assignment.
func TestQuickDoubleNegation(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func(re randomExpr) bool {
		env := randomEnv(r)
		return Not(Not(re.e)).Eval(env) == re.e.Eval(env)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan: !(a*b) ≡ !a + !b under any assignment.
func TestQuickDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	f := func(ra, rb randomExpr) bool {
		env := randomEnv(r)
		lhs := Not(And(ra.e, rb.e)).Eval(env)
		rhs := Or(Not(ra.e), Not(rb.e)).Eval(env)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickXorAsSOP: a^b ≡ a!b + !ab.
func TestQuickXorAsSOP(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	f := func(ra, rb randomExpr) bool {
		env := randomEnv(r)
		lhs := Xor(ra.e, rb.e).Eval(env)
		rhs := Or(And(ra.e, Not(rb.e)), And(Not(ra.e), rb.e)).Eval(env)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickPrintParseRoundTrip: String() output reparses to an expression
// that agrees under any assignment.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	f := func(re randomExpr) bool {
		back, err := Parse(re.e.String())
		if err != nil {
			return false
		}
		env := randomEnv(r)
		return back.Eval(env) == re.e.Eval(env)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalMonotoneInX: replacing a bound variable with X can only
// move the output to X, never flip 0↔1 (the soundness property the
// standby-state analysis relies on).
func TestQuickEvalMonotoneInX(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	f := func(re randomExpr, which uint8) bool {
		env := randomEnv(r)
		before := re.e.Eval(env)
		v := exprVars[int(which)%len(exprVars)]
		env[v] = VX
		after := re.e.Eval(env)
		if before == V0 && after == V1 {
			return false
		}
		if before == V1 && after == V0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
