package logic

import (
	"fmt"
	"strings"
)

// Parse parses a boolean expression in Liberty function syntax.
//
// Grammar (standard Liberty precedence, loosest to tightest):
//
//	expr   := term   (('+' | '|') term)*
//	term   := factor (('*' | '&')? factor)*     -- juxtaposition is AND
//	factor := xorArg ('^' xorArg)*
//	xorArg := ('!' xorArg) | primary ('\'')*
//	primary:= IDENT | '0' | '1' | '(' expr ')'
//
// Identifiers are letters, digits and underscores, starting with a letter
// or underscore; a trailing apostrophe negates ("A'").
func Parse(s string) (*Expr, error) {
	p := &parser{src: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("logic: unexpected %q at offset %d in %q", p.tok.text, p.tok.pos, s)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for package-internal literals.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokConst
	tokAnd    // * or &
	tokOr     // + or |
	tokXor    // ^
	tokNot    // !
	tokPost   // '
	tokLParen // (
	tokRParen // )
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	off int
	tok token
}

func (p *parser) next() {
	for p.off < len(p.src) && (p.src[p.off] == ' ' || p.src[p.off] == '\t') {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.off]
	switch c {
	case '*', '&':
		p.off++
		p.tok = token{tokAnd, string(c), start}
	case '+', '|':
		p.off++
		p.tok = token{tokOr, string(c), start}
	case '^':
		p.off++
		p.tok = token{tokXor, "^", start}
	case '!':
		p.off++
		p.tok = token{tokNot, "!", start}
	case '\'':
		p.off++
		p.tok = token{tokPost, "'", start}
	case '(':
		p.off++
		p.tok = token{tokLParen, "(", start}
	case ')':
		p.off++
		p.tok = token{tokRParen, ")", start}
	case '0', '1':
		p.off++
		p.tok = token{tokConst, string(c), start}
	default:
		if isIdentStart(c) {
			end := p.off
			for end < len(p.src) && isIdentPart(p.src[end]) {
				end++
			}
			p.tok = token{tokIdent, p.src[p.off:end], start}
			p.off = end
			return
		}
		p.tok = token{kind: tokEOF, text: string(c), pos: start}
		p.off = len(p.src) // force termination; caller sees leftover text error
		p.tok.kind = tokKind(-1)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '[' || c == ']'
}

func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Expr{left}
	for p.tok.kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return nary(OpOr, children), nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	children := []*Expr{left}
	for {
		if p.tok.kind == tokAnd {
			p.next()
		} else if !(p.tok.kind == tokIdent || p.tok.kind == tokConst ||
			p.tok.kind == tokNot || p.tok.kind == tokLParen) {
			break // no implicit AND possible
		}
		right, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return nary(OpAnd, children), nil
}

func (p *parser) parseXor() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokXor {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Xor(left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (*Expr, error) {
	if p.tok.kind == tokNot {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	}
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPost {
		p.next()
		e = Not(e)
	}
	return e, nil
}

func (p *parser) parsePrimary() (*Expr, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		p.next()
		return Var(name), nil
	case tokConst:
		v := V0
		if p.tok.text == "1" {
			v = V1
		}
		p.next()
		return Const(v), nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("logic: missing ')' at offset %d in %q", p.tok.pos, p.src)
		}
		p.next()
		return e, nil
	case tokEOF:
		return nil, fmt.Errorf("logic: unexpected end of expression in %q", p.src)
	}
	return nil, fmt.Errorf("logic: unexpected token %q at offset %d in %q",
		strings.TrimSpace(p.tok.text), p.tok.pos, p.src)
}
