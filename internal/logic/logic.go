// Package logic provides the boolean-expression machinery behind cell
// function attributes: an AST, a parser for the Liberty function syntax
// ("(A*B)'", "!A+B^C"), a three-valued evaluator and truth-table utilities.
//
// Three-valued evaluation (0, 1, X) lets the simulator reason about
// uninitialized state and floating nets — the exact situation the paper's
// output holders exist to prevent.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a three-valued logic level.
type Value uint8

const (
	// V0 is logic low.
	V0 Value = iota
	// V1 is logic high.
	V1
	// VX is unknown/floating.
	VX
)

// String returns "0", "1" or "x".
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "x"
	}
}

// Not returns three-valued NOT.
func (v Value) Not() Value {
	switch v {
	case V0:
		return V1
	case V1:
		return V0
	default:
		return VX
	}
}

// And returns three-valued AND.
func (v Value) And(o Value) Value {
	if v == V0 || o == V0 {
		return V0
	}
	if v == V1 && o == V1 {
		return V1
	}
	return VX
}

// Or returns three-valued OR.
func (v Value) Or(o Value) Value {
	if v == V1 || o == V1 {
		return V1
	}
	if v == V0 && o == V0 {
		return V0
	}
	return VX
}

// Xor returns three-valued XOR.
func (v Value) Xor(o Value) Value {
	if v == VX || o == VX {
		return VX
	}
	if v == o {
		return V0
	}
	return V1
}

// FromBool converts a bool to V0/V1.
func FromBool(b bool) Value {
	if b {
		return V1
	}
	return V0
}

// Op identifies an expression node kind.
type Op int

const (
	// OpVar is a variable reference.
	OpVar Op = iota
	// OpConst is a constant 0 or 1.
	OpConst
	// OpNot negates its single child.
	OpNot
	// OpAnd conjoins its children.
	OpAnd
	// OpOr disjoins its children.
	OpOr
	// OpXor is exclusive-or of its two children.
	OpXor
)

// Expr is a boolean expression tree node. Expressions are immutable once
// built.
type Expr struct {
	Op       Op
	Name     string // OpVar: variable name
	Const    Value  // OpConst: V0 or V1
	Children []*Expr
}

// Var returns a variable reference node.
func Var(name string) *Expr { return &Expr{Op: OpVar, Name: name} }

// Const returns a constant node.
func Const(v Value) *Expr { return &Expr{Op: OpConst, Const: v} }

// Not returns the negation of e.
func Not(e *Expr) *Expr { return &Expr{Op: OpNot, Children: []*Expr{e}} }

// And conjoins the given expressions (must be ≥1).
func And(es ...*Expr) *Expr { return nary(OpAnd, es) }

// Or disjoins the given expressions (must be ≥1).
func Or(es ...*Expr) *Expr { return nary(OpOr, es) }

// Xor returns a ^ b.
func Xor(a, b *Expr) *Expr { return &Expr{Op: OpXor, Children: []*Expr{a, b}} }

func nary(op Op, es []*Expr) *Expr {
	if len(es) == 1 {
		return es[0]
	}
	return &Expr{Op: op, Children: es}
}

// Eval evaluates the expression under the given assignment. Unbound
// variables evaluate to VX.
func (e *Expr) Eval(env map[string]Value) Value {
	switch e.Op {
	case OpVar:
		if v, ok := env[e.Name]; ok {
			return v
		}
		return VX
	case OpConst:
		return e.Const
	case OpNot:
		return e.Children[0].Eval(env).Not()
	case OpAnd:
		out := V1
		for _, c := range e.Children {
			out = out.And(c.Eval(env))
			if out == V0 {
				return V0
			}
		}
		return out
	case OpOr:
		out := V0
		for _, c := range e.Children {
			out = out.Or(c.Eval(env))
			if out == V1 {
				return V1
			}
		}
		return out
	case OpXor:
		return e.Children[0].Eval(env).Xor(e.Children[1].Eval(env))
	}
	return VX
}

// Vars returns the sorted set of variable names appearing in e.
func (e *Expr) Vars() []string {
	set := make(map[string]bool)
	e.collectVars(set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectVars(set map[string]bool) {
	if e.Op == OpVar {
		set[e.Name] = true
	}
	for _, c := range e.Children {
		c.collectVars(set)
	}
}

// String renders the expression in Liberty syntax (parenthesized, with
// * for AND, + for OR, ^ for XOR, ! for NOT).
func (e *Expr) String() string {
	switch e.Op {
	case OpVar:
		return e.Name
	case OpConst:
		return e.Const.String()
	case OpNot:
		return "!" + parenthesize(e.Children[0])
	case OpAnd:
		return joinChildren(e.Children, "*")
	case OpOr:
		return joinChildren(e.Children, "+")
	case OpXor:
		return joinChildren(e.Children, "^")
	}
	return "?"
}

func parenthesize(e *Expr) string {
	if e.Op == OpVar || e.Op == OpConst || e.Op == OpNot {
		return e.String()
	}
	return "(" + e.String() + ")"
}

func joinChildren(cs []*Expr, op string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = parenthesize(c)
	}
	return strings.Join(parts, op)
}

// TruthTable evaluates e for all 2^n assignments of its variables (in the
// order returned by Vars) and returns the output column. Variables beyond
// 16 are rejected to keep table sizes sane.
func (e *Expr) TruthTable() ([]Value, []string, error) {
	vars := e.Vars()
	if len(vars) > 16 {
		return nil, nil, fmt.Errorf("logic: %d variables is too many for a truth table", len(vars))
	}
	n := 1 << len(vars)
	out := make([]Value, n)
	env := make(map[string]Value, len(vars))
	for row := 0; row < n; row++ {
		for i, v := range vars {
			env[v] = FromBool(row&(1<<i) != 0)
		}
		out[row] = e.Eval(env)
	}
	return out, vars, nil
}

// Equivalent reports whether a and b compute the same function over the
// union of their variables (exhaustive; intended for cell-sized functions).
func Equivalent(a, b *Expr) (bool, error) {
	set := make(map[string]bool)
	a.collectVars(set)
	b.collectVars(set)
	vars := make([]string, 0, len(set))
	for n := range set {
		vars = append(vars, n)
	}
	sort.Strings(vars)
	if len(vars) > 16 {
		return false, fmt.Errorf("logic: %d variables is too many for exhaustive equivalence", len(vars))
	}
	env := make(map[string]Value, len(vars))
	for row := 0; row < 1<<len(vars); row++ {
		for i, v := range vars {
			env[v] = FromBool(row&(1<<i) != 0)
		}
		if a.Eval(env) != b.Eval(env) {
			return false, nil
		}
	}
	return true, nil
}
