package logic

import (
	"math/rand"
	"testing"
)

func TestThreeValuedTables(t *testing.T) {
	// AND
	andCases := []struct{ a, b, want Value }{
		{V0, V0, V0}, {V0, V1, V0}, {V1, V0, V0}, {V1, V1, V1},
		{V0, VX, V0}, {VX, V0, V0}, {V1, VX, VX}, {VX, V1, VX}, {VX, VX, VX},
	}
	for _, c := range andCases {
		if got := c.a.And(c.b); got != c.want {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// OR
	orCases := []struct{ a, b, want Value }{
		{V0, V0, V0}, {V0, V1, V1}, {V1, V0, V1}, {V1, V1, V1},
		{V1, VX, V1}, {VX, V1, V1}, {V0, VX, VX}, {VX, V0, VX}, {VX, VX, VX},
	}
	for _, c := range orCases {
		if got := c.a.Or(c.b); got != c.want {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// NOT
	if V0.Not() != V1 || V1.Not() != V0 || VX.Not() != VX {
		t.Error("NOT table wrong")
	}
	// XOR
	xorCases := []struct{ a, b, want Value }{
		{V0, V0, V0}, {V0, V1, V1}, {V1, V1, V0},
		{VX, V1, VX}, {V0, VX, VX},
	}
	for _, c := range xorCases {
		if got := c.a.Xor(c.b); got != c.want {
			t.Errorf("%v XOR %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if V0.String() != "0" || V1.String() != "1" || VX.String() != "x" {
		t.Error("Value.String wrong")
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != V1 || FromBool(false) != V0 {
		t.Error("FromBool wrong")
	}
}

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in   string
		env  map[string]Value
		want Value
	}{
		{"A*B", map[string]Value{"A": V1, "B": V1}, V1},
		{"A*B", map[string]Value{"A": V1, "B": V0}, V0},
		{"A&B", map[string]Value{"A": V1, "B": V1}, V1},
		{"A+B", map[string]Value{"A": V0, "B": V0}, V0},
		{"A|B", map[string]Value{"A": V0, "B": V1}, V1},
		{"!A", map[string]Value{"A": V0}, V1},
		{"A'", map[string]Value{"A": V0}, V1},
		{"(A*B)'", map[string]Value{"A": V1, "B": V1}, V0},
		{"A^B", map[string]Value{"A": V1, "B": V0}, V1},
		{"A^B", map[string]Value{"A": V1, "B": V1}, V0},
		{"1", nil, V1},
		{"0", nil, V0},
		{"A*1", map[string]Value{"A": V1}, V1},
		{"A+0", map[string]Value{"A": V0}, V0},
		{"!(A+B)*C", map[string]Value{"A": V0, "B": V0, "C": V1}, V1},
		{"A B", map[string]Value{"A": V1, "B": V1}, V1}, // implicit AND
		{"A'*B'", map[string]Value{"A": V0, "B": V0}, V1},
		{"A''", map[string]Value{"A": V1}, V1}, // double postfix negation
		{"!!A", map[string]Value{"A": V0}, V0},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.Eval(tc.env); got != tc.want {
			t.Errorf("%q eval = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// Liberty: ' then ^, then * (or juxtaposition), then +.
	e := MustParse("A+B*C")
	env := map[string]Value{"A": V0, "B": V1, "C": V0}
	if e.Eval(env) != V0 {
		t.Error("precedence wrong: A+B*C with A=0,B=1,C=0 should be 0")
	}
	env["C"] = V1
	if e.Eval(env) != V1 {
		t.Error("A+B*C with B=C=1 should be 1")
	}
	// A*B' means A AND (NOT B), not NOT(A AND B).
	e2 := MustParse("A*B'")
	if e2.Eval(map[string]Value{"A": V1, "B": V0}) != V1 {
		t.Error("postfix negation binding wrong")
	}
	// XOR binds tighter than AND per our grammar: A*B^C == A*(B^C).
	e3 := MustParse("A*B^C")
	if e3.Eval(map[string]Value{"A": V0, "B": V1, "C": V0}) != V0 {
		t.Error("A*B^C with A=0 should be 0")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "A+", "(A", "A)", "*A", "A @ B", "()", "A+*B", "A'^'"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []string{
		"A*B", "A+B", "!A", "(A+B)*C", "A^B", "A*B*C", "A+B+C",
		"!(A*B)+C^D", "A'*!B", "1", "0", "A*(B+C)",
	}
	for _, s := range exprs {
		e1, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", s, e1.String(), err)
		}
		eq, err := Equivalent(e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("round trip of %q not equivalent (printed %q)", s, e1.String())
		}
	}
}

func TestVars(t *testing.T) {
	e := MustParse("B*A + C*A")
	vars := e.Vars()
	if len(vars) != 3 || vars[0] != "A" || vars[1] != "B" || vars[2] != "C" {
		t.Errorf("Vars = %v", vars)
	}
	if n := len(MustParse("1").Vars()); n != 0 {
		t.Errorf("const expr has %d vars", n)
	}
}

func TestUnboundVarIsX(t *testing.T) {
	e := MustParse("A*B")
	if got := e.Eval(map[string]Value{"A": V1}); got != VX {
		t.Errorf("unbound B should yield X, got %v", got)
	}
	// Controlling value short-circuits X.
	if got := e.Eval(map[string]Value{"A": V0}); got != V0 {
		t.Errorf("A=0 should force 0, got %v", got)
	}
}

func TestTruthTable(t *testing.T) {
	e := MustParse("A*B")
	tt, vars, err := e.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || len(tt) != 4 {
		t.Fatalf("table shape: %v %v", vars, tt)
	}
	// rows are indexed with vars[0]=A as bit 0: rows 00,10,01,11 → A,B
	want := []Value{V0, V0, V0, V1}
	for i := range want {
		if tt[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, tt[i], want[i])
		}
	}
}

func TestTruthTableTooWide(t *testing.T) {
	wide := Var("v0")
	for i := 1; i < 20; i++ {
		wide = Or(wide, Var(string(rune('a'+i%26))+string(rune('0'+i%10))+"v"))
	}
	if _, _, err := wide.TruthTable(); err == nil {
		t.Error("expected error for >16 variables")
	}
}

func TestEquivalent(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"A*B", "B*A", true},
		{"!(A*B)", "!A+!B", true},  // De Morgan
		{"!(A+B)", "!A*!B", true},  // De Morgan
		{"A^B", "A*!B+!A*B", true}, // XOR expansion
		{"A", "B", false},
		{"A*B", "A+B", false},
		{"A+!A", "1", true},
		{"A*!A", "0", true},
	}
	for _, c := range cases {
		eq, err := Equivalent(MustParse(c.a), MustParse(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if eq != c.want {
			t.Errorf("Equivalent(%q,%q) = %v, want %v", c.a, c.b, eq, c.want)
		}
	}
}

func TestRandomExprEvalDeterministic(t *testing.T) {
	// Build random expressions and check printing+reparsing is equivalent.
	rng := rand.New(rand.NewSource(3))
	vars := []string{"A", "B", "C", "D"}
	var build func(depth int) *Expr
	build = func(depth int) *Expr {
		if depth == 0 || rng.Intn(4) == 0 {
			return Var(vars[rng.Intn(len(vars))])
		}
		switch rng.Intn(4) {
		case 0:
			return Not(build(depth - 1))
		case 1:
			return And(build(depth-1), build(depth-1))
		case 2:
			return Or(build(depth-1), build(depth-1))
		default:
			return Xor(build(depth-1), build(depth-1))
		}
	}
	for i := 0; i < 60; i++ {
		e := build(4)
		r, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		eq, err := Equivalent(e, r)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("print/reparse not equivalent: %q", e.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}
