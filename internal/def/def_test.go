package def

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"selectivemt/internal/geom"
	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/tech"
)

var sharedLib *liberty.Library

func lib(t *testing.T) *liberty.Library {
	t.Helper()
	if sharedLib == nil {
		proc := tech.Default130()
		l, err := liberty.Generate(proc, liberty.DefaultBuildOptions(proc))
		if err != nil {
			t.Fatal(err)
		}
		sharedLib = l
	}
	return sharedLib
}

func placedDesign(t *testing.T) *netlist.Design {
	t.Helper()
	l := lib(t)
	d := netlist.New("pd", l)
	d.AddPort("in[0]", netlist.DirInput)
	d.AddPort("out", netlist.DirOutput)
	inv, _ := d.AddInstance("u1", l.Cell("INV_X1_L"))
	buf, _ := d.AddInstance("u2", l.Cell("BUF_X2_L"))
	mid, _ := d.AddNet("mid")
	d.Connect(inv, "A", d.NetByName("in[0]"))
	d.Connect(inv, "ZN", mid)
	d.Connect(buf, "A", mid)
	d.Connect(buf, "Z", d.NetByName("out"))
	d.Core = geom.RectOf(0, 0, 50, 30)
	inv.Pos, inv.Placed = geom.Pt(10.25, 5.5), true
	buf.Pos, buf.Placed, buf.Fixed = geom.Pt(20.75, 9.2), true, true
	p := d.PortByName("in[0]")
	p.Pos, p.Placed = geom.Pt(0, 15), true
	return d
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := placedDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	pl, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if pl.Design != "pd" {
		t.Errorf("design = %q", pl.Design)
	}
	if pl.Core != d.Core {
		t.Errorf("core = %+v, want %+v", pl.Core, d.Core)
	}
	u1, ok := pl.Cells["u1"]
	if !ok {
		t.Fatal("u1 missing")
	}
	if math.Abs(u1.Pos.X-10.25) > 1e-3 || math.Abs(u1.Pos.Y-5.5) > 1e-3 {
		t.Errorf("u1 at %v", u1.Pos)
	}
	if u1.Fixed {
		t.Error("u1 should not be fixed")
	}
	u2 := pl.Cells["u2"]
	if !u2.Fixed {
		t.Error("u2 should be FIXED")
	}
	if _, ok := pl.PinPos["in[0]"]; !ok {
		t.Error("escaped pin name lost")
	}
}

func TestApply(t *testing.T) {
	d := placedDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	// A fresh unplaced copy of the same netlist.
	d2 := placedDesign(t)
	for _, inst := range d2.Instances() {
		inst.Placed = false
		inst.Pos = geom.Point{}
		inst.Fixed = false
	}
	pl, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Apply(d2); err != nil {
		t.Fatal(err)
	}
	u2 := d2.Instance("u2")
	if !u2.Placed || !u2.Fixed || math.Abs(u2.Pos.X-20.75) > 1e-3 {
		t.Errorf("apply failed: %+v", u2)
	}
}

func TestApplyMismatches(t *testing.T) {
	d := placedDesign(t)
	var buf bytes.Buffer
	Write(&buf, d)
	pl, _ := Parse(bytes.NewReader(buf.Bytes()))

	other := netlist.New("other", lib(t))
	if err := pl.Apply(other); err == nil {
		t.Error("wrong design name accepted")
	}
	// Same name, missing component.
	empty := netlist.New("pd", lib(t))
	if err := pl.Apply(empty); err == nil {
		t.Error("missing component accepted")
	}
	// Cell mismatch.
	d3 := placedDesign(t)
	d3.ReplaceCell(d3.Instance("u1"), lib(t).Cell("INV_X1_H"))
	if err := pl.Apply(d3); err == nil {
		t.Error("cell mismatch accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no end", "VERSION 5.8 ;\nDESIGN x ;\n"},
		{"record outside section", "DESIGN x ;\n- u1 INV + PLACED ( 0 0 ) N ;\nEND DESIGN\n"},
		{"bad units", "UNITS DISTANCE MICRONS zz ;\nEND DESIGN\n"},
		{"bad diearea", "DIEAREA ( 0 0 ) ;\nEND DESIGN\n"},
		{"unknown statement", "FROBNICATE 3 ;\nEND DESIGN\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestUnplacedComponent(t *testing.T) {
	d := placedDesign(t)
	d.Instance("u1").Placed = false
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UNPLACED") {
		t.Error("unplaced status not written")
	}
	pl, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Cells["u1"].Placed {
		t.Error("unplaced component parsed as placed")
	}
}
