// Package def reads and writes a DEF (Design Exchange Format) subset: the
// die area, placed components and pins of a design. Together with the
// Verilog (netlist), SDC (constraints), Liberty (library) and SPEF
// (parasitics) support this completes the file set a physical design flow
// exchanges; cmd/smtflow can emit the final placement for inspection.
//
// The subset: DESIGN/UNITS/DIEAREA, COMPONENTS with placement status and
// orientation N, PINS with direction and location, END DESIGN. Distances
// are written in DEF database units (1000 per µm).
package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"selectivemt/internal/geom"
	"selectivemt/internal/netlist"
)

// dbuPerUm is the database-unit scale written to UNITS.
const dbuPerUm = 1000

// Write renders the design's placement as DEF.
func Write(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	p("VERSION 5.8 ;\n")
	p("DESIGN %s ;\n", d.Name)
	p("UNITS DISTANCE MICRONS %d ;\n", dbuPerUm)
	core := d.Core
	p("DIEAREA ( %d %d ) ( %d %d ) ;\n",
		dbu(core.Lo.X), dbu(core.Lo.Y), dbu(core.Hi.X), dbu(core.Hi.Y))

	insts := d.Instances()
	p("COMPONENTS %d ;\n", len(insts))
	for _, inst := range insts {
		status := "UNPLACED"
		loc := ""
		if inst.Placed {
			status = "PLACED"
			if inst.Fixed {
				status = "FIXED"
			}
			loc = fmt.Sprintf(" ( %d %d ) N", dbu(inst.Pos.X), dbu(inst.Pos.Y))
		}
		p("- %s %s + %s%s ;\n", escape(inst.Name), inst.Cell.Name, status, loc)
	}
	p("END COMPONENTS\n")

	ports := d.Ports()
	p("PINS %d ;\n", len(ports))
	for _, pt := range ports {
		dir := "INPUT"
		if pt.Dir == netlist.DirOutput {
			dir = "OUTPUT"
		}
		p("- %s + NET %s + DIRECTION %s", escape(pt.Name), escape(pt.Net.Name), dir)
		if pt.Placed {
			p(" + PLACED ( %d %d ) N", dbu(pt.Pos.X), dbu(pt.Pos.Y))
		}
		p(" ;\n")
	}
	p("END PINS\n")
	p("END DESIGN\n")
	return bw.Flush()
}

func dbu(um float64) int { return int(um*dbuPerUm + 0.5) }

func escape(s string) string {
	if strings.ContainsAny(s, " []") {
		return strings.NewReplacer("[", "\\[", "]", "\\]").Replace(s)
	}
	return s
}

func unescape(s string) string {
	return strings.NewReplacer("\\[", "[", "\\]", "]").Replace(s)
}

// Placement is the parsed content of a DEF file.
type Placement struct {
	Design  string
	Core    geom.Rect
	Cells   map[string]PlacedCell // instance name → placement
	PinPos  map[string]geom.Point // port name → location
	DBPerUm int
}

// PlacedCell is one component record.
type PlacedCell struct {
	Cell   string
	Pos    geom.Point
	Placed bool
	Fixed  bool
}

// Parse reads a DEF subset written by Write.
func Parse(r io.Reader) (*Placement, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	out := &Placement{
		Cells:   make(map[string]PlacedCell),
		PinPos:  make(map[string]geom.Point),
		DBPerUm: dbuPerUm,
	}
	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "VERSION"):
		case strings.HasPrefix(line, "DESIGN "):
			out.Design = f[1]
		case strings.HasPrefix(line, "UNITS"):
			for i, tok := range f {
				if tok == "MICRONS" && i+1 < len(f) {
					v, err := strconv.Atoi(strings.TrimSuffix(f[i+1], ";"))
					if err != nil {
						return nil, fmt.Errorf("def: line %d: bad UNITS", lineNo)
					}
					out.DBPerUm = v
				}
			}
		case strings.HasPrefix(line, "DIEAREA"):
			nums := numbers(f)
			if len(nums) != 4 {
				return nil, fmt.Errorf("def: line %d: DIEAREA needs 4 coordinates", lineNo)
			}
			s := float64(out.DBPerUm)
			out.Core = geom.RectOf(nums[0]/s, nums[1]/s, nums[2]/s, nums[3]/s)
		case strings.HasPrefix(line, "COMPONENTS"):
			section = "COMPONENTS"
		case strings.HasPrefix(line, "PINS"):
			section = "PINS"
		case strings.HasPrefix(line, "END COMPONENTS"), strings.HasPrefix(line, "END PINS"):
			section = ""
		case strings.HasPrefix(line, "END DESIGN"):
			return out, nil
		case strings.HasPrefix(line, "-"):
			switch section {
			case "COMPONENTS":
				if err := out.parseComponent(f, lineNo); err != nil {
					return nil, err
				}
			case "PINS":
				if err := out.parsePin(f, lineNo); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("def: line %d: record outside a section", lineNo)
			}
		default:
			return nil, fmt.Errorf("def: line %d: unsupported statement %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("def: missing END DESIGN")
}

func (pl *Placement) parseComponent(f []string, lineNo int) error {
	if len(f) < 3 {
		return fmt.Errorf("def: line %d: malformed component", lineNo)
	}
	name := unescape(f[1])
	pc := PlacedCell{Cell: f[2]}
	for i, tok := range f {
		switch tok {
		case "PLACED", "FIXED":
			pc.Placed = true
			pc.Fixed = tok == "FIXED"
			nums := numbers(f[i:])
			if len(nums) < 2 {
				return fmt.Errorf("def: line %d: placement without coordinates", lineNo)
			}
			s := float64(pl.DBPerUm)
			pc.Pos = geom.Pt(nums[0]/s, nums[1]/s)
		}
	}
	pl.Cells[name] = pc
	return nil
}

func (pl *Placement) parsePin(f []string, lineNo int) error {
	if len(f) < 2 {
		return fmt.Errorf("def: line %d: malformed pin", lineNo)
	}
	name := unescape(f[1])
	for i, tok := range f {
		if tok == "PLACED" {
			nums := numbers(f[i:])
			if len(nums) < 2 {
				return fmt.Errorf("def: line %d: pin placement without coordinates", lineNo)
			}
			s := float64(pl.DBPerUm)
			pl.PinPos[name] = geom.Pt(nums[0]/s, nums[1]/s)
		}
	}
	if _, ok := pl.PinPos[name]; !ok {
		pl.PinPos[name] = geom.Point{}
	}
	return nil
}

// numbers extracts the numeric tokens from a field list (skipping
// punctuation like parens and semicolons).
func numbers(f []string) []float64 {
	var out []float64
	for _, tok := range f {
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// Apply transfers parsed placement onto a design: matching instances get
// positions; unknown names are reported.
func (pl *Placement) Apply(d *netlist.Design) error {
	if pl.Design != "" && pl.Design != d.Name {
		return fmt.Errorf("def: placement is for design %q, not %q", pl.Design, d.Name)
	}
	if !pl.Core.Empty() {
		d.Core = pl.Core
	}
	for name, pc := range pl.Cells {
		inst := d.Instance(name)
		if inst == nil {
			return fmt.Errorf("def: component %q not in the netlist", name)
		}
		if inst.Cell.Name != pc.Cell {
			return fmt.Errorf("def: component %q is %s in DEF but %s in the netlist",
				name, pc.Cell, inst.Cell.Name)
		}
		inst.Pos = pc.Pos
		inst.Placed = pc.Placed
		inst.Fixed = pc.Fixed
	}
	for name, pos := range pl.PinPos {
		if p := d.PortByName(name); p != nil {
			p.Pos = pos
			p.Placed = true
		}
	}
	return nil
}
