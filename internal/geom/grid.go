package geom

import "math"

// Grid buckets integer item IDs by position so the clustering and placement
// engines can ask "which items are near here" without scanning everything.
// It is a plain uniform grid: good enough for standard-cell densities.
type Grid struct {
	bounds Rect
	pitch  float64
	nx, ny int
	cells  [][]int32
	pos    map[int32]Point
}

// NewGrid creates a grid over bounds with approximately the given bucket
// pitch. Pitch is clamped so the grid has at least one bucket per axis.
func NewGrid(bounds Rect, pitch float64) *Grid {
	if pitch <= 0 {
		pitch = 1
	}
	nx := int(math.Ceil(bounds.W()/pitch)) + 1
	ny := int(math.Ceil(bounds.H()/pitch)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		bounds: bounds,
		pitch:  pitch,
		nx:     nx,
		ny:     ny,
		cells:  make([][]int32, nx*ny),
		pos:    make(map[int32]Point),
	}
}

func (g *Grid) bucket(p Point) int {
	ix := int((p.X - g.bounds.Lo.X) / g.pitch)
	iy := int((p.Y - g.bounds.Lo.Y) / g.pitch)
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy >= g.ny {
		iy = g.ny - 1
	}
	return iy*g.nx + ix
}

// Insert adds id at position p. Inserting an existing id moves it.
func (g *Grid) Insert(id int32, p Point) {
	if old, ok := g.pos[id]; ok {
		g.removeFromBucket(id, g.bucket(old))
	}
	b := g.bucket(p)
	g.cells[b] = append(g.cells[b], id)
	g.pos[id] = p
}

// Remove deletes id from the grid. Removing an absent id is a no-op.
func (g *Grid) Remove(id int32) {
	p, ok := g.pos[id]
	if !ok {
		return
	}
	g.removeFromBucket(id, g.bucket(p))
	delete(g.pos, id)
}

func (g *Grid) removeFromBucket(id int32, b int) {
	s := g.cells[b]
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			g.cells[b] = s[:len(s)-1]
			return
		}
	}
}

// Len returns the number of items currently in the grid.
func (g *Grid) Len() int { return len(g.pos) }

// Position returns the stored position of id.
func (g *Grid) Position(id int32) (Point, bool) {
	p, ok := g.pos[id]
	return p, ok
}

// Near calls fn for every item within Manhattan distance d of p (a superset
// is scanned; the distance test is exact). Iteration stops if fn returns
// false.
func (g *Grid) Near(p Point, d float64, fn func(id int32, q Point) bool) {
	ix0 := int((p.X - d - g.bounds.Lo.X) / g.pitch)
	ix1 := int((p.X + d - g.bounds.Lo.X) / g.pitch)
	iy0 := int((p.Y - d - g.bounds.Lo.Y) / g.pitch)
	iy1 := int((p.Y + d - g.bounds.Lo.Y) / g.pitch)
	if ix0 < 0 {
		ix0 = 0
	}
	if iy0 < 0 {
		iy0 = 0
	}
	if ix1 >= g.nx {
		ix1 = g.nx - 1
	}
	if iy1 >= g.ny {
		iy1 = g.ny - 1
	}
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			for _, id := range g.cells[iy*g.nx+ix] {
				q := g.pos[id]
				if p.Manhattan(q) <= d {
					if !fn(id, q) {
						return
					}
				}
			}
		}
	}
}

// Nearest returns the item closest to p in Manhattan distance, searching
// outward ring by ring. ok is false when the grid is empty.
func (g *Grid) Nearest(p Point, skip func(id int32) bool) (best int32, bestPos Point, ok bool) {
	if len(g.pos) == 0 {
		return 0, Point{}, false
	}
	bestD := math.Inf(1)
	maxR := g.nx + g.ny // Manhattan distance can span both axes

	for ring := 1; ; ring++ {
		d := float64(ring) * g.pitch
		g.Near(p, d, func(id int32, q Point) bool {
			if skip != nil && skip(id) {
				return true
			}
			if dd := p.Manhattan(q); dd < bestD {
				bestD, best, bestPos, ok = dd, id, q, true
			}
			return true
		})
		// Items one ring out could still be closer than a corner hit in
		// this ring, so confirm with one extra ring after the first find.
		if ok && bestD <= d {
			return best, bestPos, true
		}
		if ring > maxR+1 {
			return best, bestPos, ok
		}
	}
}
