package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestManhattan(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(2, 5), Pt(2, 5), 0},
	}
	for _, tc := range tests {
		if got := tc.p.Manhattan(tc.q); got != tc.want {
			t.Errorf("Manhattan(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.q.Manhattan(tc.p); got != tc.want {
			t.Errorf("Manhattan not symmetric for %v,%v", tc.p, tc.q)
		}
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound the domain: at ~1e308 the distance sums overflow and the
		// inequality loses meaning numerically.
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		lhs := a.Manhattan(c)
		rhs := a.Manhattan(b) + b.Manhattan(c)
		return lhs <= rhs*(1+1e-12)+1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Pt(0, 0).Euclidean(Pt(3, 4)); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(4, 5, 1, 2) // reversed corners
	if r.Lo != Pt(1, 2) || r.Hi != Pt(4, 5) {
		t.Fatalf("RectOf did not normalize: %+v", r)
	}
	if r.W() != 3 || r.H() != 3 {
		t.Errorf("W,H = %v,%v", r.W(), r.H())
	}
	if r.Area() != 9 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.HalfPerimeter() != 6 {
		t.Errorf("HalfPerimeter = %v", r.HalfPerimeter())
	}
	if r.Center() != Pt(2.5, 3.5) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(4, 5)) || r.Contains(Pt(0, 0)) {
		t.Error("Contains wrong")
	}
}

func TestRectUnionAndEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.Empty() {
		t.Fatal("EmptyRect not empty")
	}
	r := RectOf(0, 0, 1, 1)
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %+v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %+v", got)
	}
	s := RectOf(2, -1, 3, 0.5)
	u := r.Union(s)
	if u != RectOf(0, -1, 3, 1) {
		t.Errorf("Union = %+v", u)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(-2, 3), Pt(0, -5)}
	bb := BoundingBox(pts)
	if bb != RectOf(-2, -5, 1, 3) {
		t.Errorf("BoundingBox = %+v", bb)
	}
	if !BoundingBox(nil).Empty() {
		t.Error("BoundingBox(nil) should be empty")
	}
}

func TestRectClampExpand(t *testing.T) {
	r := RectOf(0, 0, 10, 10)
	if got := r.Clamp(Pt(-5, 20)); got != Pt(0, 10) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt(5, 5)); got != Pt(5, 5) {
		t.Errorf("Clamp interior = %v", got)
	}
	ex := r.Expand(2)
	if ex != RectOf(-2, -2, 12, 12) {
		t.Errorf("Expand = %+v", ex)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != Pt(0, 0) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); got != Pt(1, 1) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestGridInsertRemove(t *testing.T) {
	g := NewGrid(RectOf(0, 0, 100, 100), 10)
	g.Insert(1, Pt(5, 5))
	g.Insert(2, Pt(50, 50))
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	p, ok := g.Position(1)
	if !ok || p != Pt(5, 5) {
		t.Fatalf("Position(1) = %v,%v", p, ok)
	}
	// Move id 1 by re-inserting.
	g.Insert(1, Pt(95, 95))
	if g.Len() != 2 {
		t.Fatalf("Len after move = %d", g.Len())
	}
	var found []int32
	g.Near(Pt(96, 96), 5, func(id int32, q Point) bool {
		found = append(found, id)
		return true
	})
	if len(found) != 1 || found[0] != 1 {
		t.Errorf("Near after move found %v", found)
	}
	g.Remove(1)
	g.Remove(1) // double remove is a no-op
	if g.Len() != 1 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
}

func TestGridNear(t *testing.T) {
	g := NewGrid(RectOf(0, 0, 100, 100), 7)
	g.Insert(1, Pt(10, 10))
	g.Insert(2, Pt(12, 10))
	g.Insert(3, Pt(40, 40))
	var ids []int32
	g.Near(Pt(10, 10), 3, func(id int32, q Point) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 2 {
		t.Errorf("Near found %v, want ids 1 and 2", ids)
	}
	// Early-termination path.
	n := 0
	g.Near(Pt(10, 10), 100, func(id int32, q Point) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Near with early stop visited %d", n)
	}
}

func TestGridNearest(t *testing.T) {
	g := NewGrid(RectOf(0, 0, 100, 100), 5)
	if _, _, ok := g.Nearest(Pt(0, 0), nil); ok {
		t.Fatal("Nearest on empty grid should report !ok")
	}
	g.Insert(1, Pt(90, 90))
	g.Insert(2, Pt(20, 20))
	id, p, ok := g.Nearest(Pt(0, 0), nil)
	if !ok || id != 2 || p != Pt(20, 20) {
		t.Fatalf("Nearest = %d,%v,%v", id, p, ok)
	}
	// Skip function excludes the nearest.
	id, _, ok = g.Nearest(Pt(0, 0), func(id int32) bool { return id == 2 })
	if !ok || id != 1 {
		t.Fatalf("Nearest with skip = %d,%v", id, ok)
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGrid(RectOf(0, 0, 50, 50), 4)
	pts := make(map[int32]Point)
	for i := int32(0); i < 60; i++ {
		p := Pt(rng.Float64()*50, rng.Float64()*50)
		g.Insert(i, p)
		pts[i] = p
	}
	for trial := 0; trial < 50; trial++ {
		q := Pt(rng.Float64()*50, rng.Float64()*50)
		_, got, ok := g.Nearest(q, nil)
		if !ok {
			t.Fatal("Nearest failed")
		}
		bestD := math.Inf(1)
		for _, p := range pts {
			if d := q.Manhattan(p); d < bestD {
				bestD = d
			}
		}
		if d := q.Manhattan(got); math.Abs(d-bestD) > 1e-9 {
			t.Fatalf("Nearest distance %v, brute force %v", d, bestD)
		}
	}
}
