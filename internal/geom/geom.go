// Package geom provides the small amount of plane geometry the placement,
// routing and clustering engines share: points, rectangles, Manhattan
// distances and a uniform grid for neighborhood queries.
//
// All coordinates are in micrometers unless a caller says otherwise; the
// package itself is unit-agnostic.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the placement plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Manhattan returns the L1 distance between p and q, the metric of
// rectilinear wiring.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclidean returns the L2 distance between p and q.
func (p Point) Euclidean(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with Lo at the lower-left corner and Hi
// at the upper-right corner. A Rect with Hi component smaller than the
// corresponding Lo component is empty.
type Rect struct {
	Lo, Hi Point
}

// RectOf returns the rectangle spanning (x0,y0)-(x1,y1) regardless of corner
// ordering.
func RectOf(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{Lo: Point{x0, y0}, Hi: Point{x1, y1}}
}

// W returns the rectangle's width (0 when empty).
func (r Rect) W() float64 {
	if r.Hi.X < r.Lo.X {
		return 0
	}
	return r.Hi.X - r.Lo.X
}

// H returns the rectangle's height (0 when empty).
func (r Rect) H() float64 {
	if r.Hi.Y < r.Lo.Y {
		return 0
	}
	return r.Hi.Y - r.Lo.Y
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// HalfPerimeter returns W+H, the HPWL contribution of a net whose bounding
// box is r.
func (r Rect) HalfPerimeter() float64 { return r.W() + r.H() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of boundaries).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{Lo: Point{r.Lo.X - d, r.Lo.Y - d}, Hi: Point{r.Hi.X + d, r.Hi.Y + d}}
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle acts as the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Lo: Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Empty reports whether the rectangle encloses no area and no points.
func (r Rect) Empty() bool { return r.Hi.X < r.Lo.X || r.Hi.Y < r.Lo.Y }

// EmptyRect returns a rectangle that is the identity for Union.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Lo: Point{inf, inf}, Hi: Point{-inf, -inf}}
}

// BoundingBox returns the smallest rectangle containing all points. It
// returns EmptyRect() for an empty slice.
func BoundingBox(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}

// Clamp returns the point inside r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{clamp(p.X, r.Lo.X, r.Hi.X), clamp(p.Y, r.Lo.Y, r.Hi.Y)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Centroid returns the arithmetic mean of the points; the zero Point for an
// empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}
