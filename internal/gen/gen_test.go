package gen

import "testing"

func TestModuleBasics(t *testing.T) {
	m := NewModule("t")
	a := m.Input("a")
	b := m.Input("b")
	y := m.And(a, b)
	m.Output("y", y)
	s := m.Stats()
	if s.Inputs != 2 || s.Outputs != 1 || s.Gates != 1 || s.Flops != 0 {
		t.Errorf("stats = %+v", s)
	}
	if got := m.OutputNames(); len(got) != 1 || got[0] != "y" {
		t.Errorf("outputs = %v", got)
	}
}

func TestInputOutputBus(t *testing.T) {
	m := NewModule("t")
	bus := m.InputBus("d", 4)
	if len(bus) != 4 {
		t.Fatal("bus width")
	}
	regs := m.DFFBus(bus)
	m.OutputBus("q", regs)
	if m.Stats().Flops != 4 {
		t.Error("flop count")
	}
	if m.Nodes[bus[2]].Name != "d[2]" {
		t.Errorf("bit name = %q", m.Nodes[bus[2]].Name)
	}
}

func TestDuplicateOutputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate output should panic")
		}
	}()
	m := NewModule("t")
	a := m.Input("a")
	m.Output("y", a)
	m.Output("y", a)
}

func TestBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range input should panic")
		}
	}()
	m := NewModule("t")
	m.And(5, 6)
}

func TestRippleAdderStructure(t *testing.T) {
	m := NewModule("t")
	a := m.InputBus("a", 4)
	b := m.InputBus("b", 4)
	sum, carry := m.RippleAdder(a, b)
	if len(sum) != 4 || carry < 0 {
		t.Fatal("adder shape")
	}
	if m.Stats().Gates == 0 {
		t.Error("no gates generated")
	}
}

func TestArrayMultiplierWidth(t *testing.T) {
	m := NewModule("t")
	a := m.InputBus("a", 4)
	b := m.InputBus("b", 4)
	p := m.ArrayMultiplier(a, b)
	if len(p) != 8 {
		t.Fatalf("4x4 product width = %d, want 8", len(p))
	}
}

func TestCounterPatchesFeedback(t *testing.T) {
	m := NewModule("t")
	en := m.Input("en")
	cnt := m.Counter(4, en)
	if len(cnt) != 4 {
		t.Fatal("counter width")
	}
	for _, id := range cnt {
		n := m.Nodes[id]
		if n.Op != OpDFF || len(n.Ins) != 1 {
			t.Fatalf("counter bit %d not a patched DFF", id)
		}
	}
}

func TestCircuitShapes(t *testing.T) {
	a := CircuitA()
	b := CircuitB()
	sa, sb := a.Module.Stats(), b.Module.Stats()
	if sa.Gates < 500 {
		t.Errorf("circuit A too small: %+v", sa)
	}
	if sb.Gates < 300 {
		t.Errorf("circuit B too small: %+v", sb)
	}
	// A is datapath heavy: gates per flop much higher than B.
	ra := float64(sa.Gates) / float64(sa.Flops)
	rb := float64(sb.Gates) / float64(sb.Flops)
	if ra <= rb {
		t.Errorf("A gates/flop %v should exceed B %v", ra, rb)
	}
	if a.ClockSlack < 1.05 || b.ClockSlack < 1.05 {
		t.Error("clock slack must clear the MT bounce derate")
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	build := func() Stats {
		m := NewModule("t")
		seeds := m.InputBus("s", 4)
		outs := m.RandomLogic(seeds, 100, 42)
		m.OutputBus("o", outs)
		return m.Stats()
	}
	if build() != build() {
		t.Error("RandomLogic not deterministic")
	}
}
