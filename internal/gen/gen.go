// Package gen produces benchmark circuits as technology-independent
// generic-gate modules: datapath blocks (array multipliers, adders, ALUs),
// control blocks (CRC, LFSR, counters) and random logic clouds. The synth
// package maps these onto the cell library ("physical synthesis using
// low-Vth cells", the first stage of the paper's Fig. 4 flow).
//
// CircuitA and CircuitB are the stand-ins for the paper's two proprietary
// evaluation circuits: A is datapath-heavy and meant to run at a tight
// clock (many critical paths ⇒ many MT-cells), B is control/flop-heavy at
// a relaxed clock (fewer MT-cells, higher always-on leakage floor).
package gen

import (
	"fmt"
	"math/rand"
)

// Op is a generic-gate operation.
type Op int

// Generic operations. OpAnd/OpOr/OpXor accept ≥2 inputs; synth decomposes
// wide gates into trees of 2-input cells.
const (
	OpInput Op = iota
	OpAnd
	OpOr
	OpXor
	OpNot
	OpMux // Ins: [sel, a, b] → sel ? b : a
	OpDFF // Ins: [d]
)

// Node is one generic gate. ID is its index in Module.Nodes.
type Node struct {
	ID   int
	Op   Op
	Ins  []int
	Name string // ports only
}

// Module is a generic netlist.
type Module struct {
	Name    string
	Nodes   []*Node
	Inputs  []int          // node IDs of primary inputs
	Outputs map[string]int // output port name → node ID
	outOrd  []string
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Outputs: make(map[string]int)}
}

// OutputNames returns output port names in declaration order.
func (m *Module) OutputNames() []string {
	out := make([]string, len(m.outOrd))
	copy(out, m.outOrd)
	return out
}

func (m *Module) add(op Op, name string, ins ...int) int {
	for _, in := range ins {
		if in < 0 || in >= len(m.Nodes) {
			panic(fmt.Sprintf("gen: node input %d out of range", in))
		}
	}
	n := &Node{ID: len(m.Nodes), Op: op, Ins: ins, Name: name}
	m.Nodes = append(m.Nodes, n)
	return n.ID
}

// Input declares a primary input.
func (m *Module) Input(name string) int {
	id := m.add(OpInput, name)
	m.Inputs = append(m.Inputs, id)
	return id
}

// InputBus declares width inputs named base[i].
func (m *Module) InputBus(base string, width int) []int {
	ids := make([]int, width)
	for i := range ids {
		ids[i] = m.Input(fmt.Sprintf("%s[%d]", base, i))
	}
	return ids
}

// Output marks a node as a primary output.
func (m *Module) Output(name string, id int) {
	if _, dup := m.Outputs[name]; dup {
		panic(fmt.Sprintf("gen: duplicate output %q", name))
	}
	m.Outputs[name] = id
	m.outOrd = append(m.outOrd, name)
}

// OutputBus marks width nodes as outputs named base[i].
func (m *Module) OutputBus(base string, ids []int) {
	for i, id := range ids {
		m.Output(fmt.Sprintf("%s[%d]", base, i), id)
	}
}

// And returns a conjunction node.
func (m *Module) And(ins ...int) int { return m.add(OpAnd, "", ins...) }

// Or returns a disjunction node.
func (m *Module) Or(ins ...int) int { return m.add(OpOr, "", ins...) }

// Xor returns an exclusive-or node.
func (m *Module) Xor(ins ...int) int { return m.add(OpXor, "", ins...) }

// Not returns a negation node.
func (m *Module) Not(a int) int { return m.add(OpNot, "", a) }

// Mux returns sel ? b : a.
func (m *Module) Mux(sel, a, b int) int { return m.add(OpMux, "", sel, a, b) }

// DFF returns a registered copy of d.
func (m *Module) DFF(d int) int { return m.add(OpDFF, "", d) }

// DFFBus registers a bus.
func (m *Module) DFFBus(d []int) []int {
	out := make([]int, len(d))
	for i, id := range d {
		out[i] = m.DFF(id)
	}
	return out
}

// Stats summarizes a module.
type Stats struct {
	Gates, Flops, Inputs, Outputs int
}

// Stats returns gate/flop counts.
func (m *Module) Stats() Stats {
	s := Stats{Inputs: len(m.Inputs), Outputs: len(m.Outputs)}
	for _, n := range m.Nodes {
		switch n.Op {
		case OpDFF:
			s.Flops++
		case OpInput:
		default:
			s.Gates++
		}
	}
	return s
}

// --- arithmetic building blocks ---

// fullAdder returns (sum, carry).
func (m *Module) fullAdder(a, b, cin int) (int, int) {
	axb := m.Xor(a, b)
	sum := m.Xor(axb, cin)
	carry := m.Or(m.And(a, b), m.And(cin, axb))
	return sum, carry
}

// RippleAdder adds two equal-width buses and returns (sum bus, carry out).
func (m *Module) RippleAdder(a, b []int) ([]int, int) {
	if len(a) != len(b) {
		panic("gen: adder width mismatch")
	}
	sum := make([]int, len(a))
	carry := -1
	for i := range a {
		if carry < 0 {
			s := m.Xor(a[i], b[i])
			c := m.And(a[i], b[i])
			sum[i], carry = s, c
			continue
		}
		sum[i], carry = m.fullAdder(a[i], b[i], carry)
	}
	return sum, carry
}

// ArrayMultiplier multiplies two equal-width buses, returning the full
// 2w-bit product. Classic AND partial products + ripple rows: long carry
// chains, which is exactly the many-critical-paths structure Circuit A
// needs.
func (m *Module) ArrayMultiplier(a, b []int) []int {
	w := len(a)
	if len(b) != w {
		panic("gen: multiplier width mismatch")
	}
	// Row 0: partial products of b[0].
	acc := make([]int, w)
	for i := range acc {
		acc[i] = m.And(a[i], b[0])
	}
	product := []int{acc[0]}
	acc = acc[1:]
	for j := 1; j < w; j++ {
		pp := make([]int, w)
		for i := range pp {
			pp[i] = m.And(a[i], b[j])
		}
		// acc (w-1 bits) + pp (w bits): align, ripple-add.
		sum := make([]int, w)
		carry := -1
		for i := 0; i < w; i++ {
			var ai int
			hasAcc := i < len(acc)
			if hasAcc {
				ai = acc[i]
			}
			switch {
			case hasAcc && carry >= 0:
				sum[i], carry = m.fullAdder(ai, pp[i], carry)
			case hasAcc:
				sum[i] = m.Xor(ai, pp[i])
				carry = m.And(ai, pp[i])
			case carry >= 0:
				sum[i] = m.Xor(pp[i], carry)
				carry = m.And(pp[i], carry)
			default:
				sum[i] = pp[i]
			}
		}
		product = append(product, sum[0])
		acc = sum[1:]
		if carry >= 0 {
			acc = append(acc, carry)
		}
	}
	product = append(product, acc...)
	return product
}

// ALU builds a small ALU: op selects among add, and, or, xor.
func (m *Module) ALU(a, b []int, op []int) []int {
	if len(op) != 2 {
		panic("gen: ALU needs a 2-bit op")
	}
	sum, _ := m.RippleAdder(a, b)
	out := make([]int, len(a))
	for i := range a {
		andv := m.And(a[i], b[i])
		orv := m.Or(a[i], b[i])
		xorv := m.Xor(a[i], b[i])
		lo := m.Mux(op[0], sum[i], andv)
		hi := m.Mux(op[0], orv, xorv)
		out[i] = m.Mux(op[1], lo, hi)
	}
	return out
}

// CRCStep builds one parallel CRC update: state' = F(state, data) for the
// polynomial taps (bit positions receiving feedback XOR).
func (m *Module) CRCStep(state, data []int, taps []int) []int {
	w := len(state)
	cur := append([]int(nil), state...)
	for _, d := range data {
		fb := m.Xor(cur[w-1], d)
		next := make([]int, w)
		for i := 0; i < w; i++ {
			var src int
			if i == 0 {
				src = fb
			} else {
				src = cur[i-1]
			}
			if i != 0 && hasTap(taps, i) {
				src = m.Xor(src, fb)
			}
			next[i] = src
		}
		cur = next
	}
	return cur
}

func hasTap(taps []int, i int) bool {
	for _, t := range taps {
		if t == i {
			return true
		}
	}
	return false
}

// Counter builds a width-bit synchronous counter with enable; returns the
// registered count bus.
func (m *Module) Counter(width int, enable int) []int {
	// state registers feed back through half-adders.
	regs := make([]int, width)
	// Create placeholder DFFs after computing next-state: we need the
	// feedback, so allocate DFF nodes lazily via two passes using Mux on
	// enable. Build q as DFF whose input is patched afterwards.
	dffs := make([]*Node, width)
	for i := range regs {
		id := m.add(OpDFF, "", 0) // input patched below
		dffs[i] = m.Nodes[id]
		regs[i] = id
	}
	carry := enable
	for i := 0; i < width; i++ {
		next := m.Xor(regs[i], carry)
		carry = m.And(regs[i], carry)
		dffs[i].Ins = []int{next}
	}
	return regs
}

// RandomLogic appends a random DAG of nGates gates over the given seed
// nodes and returns the last few outputs. Deterministic per seed.
func (m *Module) RandomLogic(seedNodes []int, nGates int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	live := append([]int(nil), seedNodes...)
	for i := 0; i < nGates; i++ {
		a := live[rng.Intn(len(live))]
		b := live[rng.Intn(len(live))]
		var id int
		switch rng.Intn(4) {
		case 0:
			id = m.And(a, b)
		case 1:
			id = m.Or(a, b)
		case 2:
			id = m.Xor(a, b)
		default:
			id = m.Not(a)
		}
		live = append(live, id)
		// Keep the live window bounded so depth grows.
		if len(live) > 48 {
			live = live[len(live)-48:]
		}
	}
	tail := 8
	if len(live) < tail {
		tail = len(live)
	}
	return live[len(live)-tail:]
}
