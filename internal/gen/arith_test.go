package gen_test

import (
	"fmt"
	"math/rand"
	"selectivemt/internal/gen"
	"testing"

	"selectivemt/internal/liberty"
	"selectivemt/internal/logic"
	"selectivemt/internal/netlist"
	"selectivemt/internal/sim"
	"selectivemt/internal/synth"
	"selectivemt/internal/tech"
)

// The datapath generators are verified functionally: map each block to
// gates, simulate, and compare against Go integer arithmetic.

var arithLib *liberty.Library

func alib(t *testing.T) *liberty.Library {
	t.Helper()
	if arithLib == nil {
		proc := tech.Default130()
		l, err := liberty.Generate(proc, liberty.DefaultBuildOptions(proc))
		if err != nil {
			t.Fatal(err)
		}
		arithLib = l
	}
	return arithLib
}

func mapped(t *testing.T, m *gen.Module) (*netlist.Design, *sim.Simulator) {
	t.Helper()
	d, err := synth.Map(m, alib(t), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetState(logic.V0)
	return d, s
}

func setBus(t *testing.T, s *sim.Simulator, base string, width int, val uint64) {
	t.Helper()
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("%s[%d]", base, i)
		if err := s.SetInput(name, logic.FromBool(val&(1<<i) != 0)); err != nil {
			t.Fatal(err)
		}
	}
}

func readBus(t *testing.T, s *sim.Simulator, base string, width int) uint64 {
	t.Helper()
	var val uint64
	for i := 0; i < width; i++ {
		v, err := s.PortValue(fmt.Sprintf("%s[%d]", base, i))
		if err != nil {
			t.Fatal(err)
		}
		if v == logic.VX {
			t.Fatalf("%s[%d] is X", base, i)
		}
		if v == logic.V1 {
			val |= 1 << i
		}
	}
	return val
}

func TestRippleAdderFunctional(t *testing.T) {
	const w = 6
	m := gen.NewModule("add")
	a := m.InputBus("a", w)
	b := m.InputBus("b", w)
	sum, carry := m.RippleAdder(a, b)
	m.OutputBus("s", sum)
	m.Output("co", carry)
	_, s := mapped(t, m)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		av := rng.Uint64() & (1<<w - 1)
		bv := rng.Uint64() & (1<<w - 1)
		setBus(t, s, "a", w, av)
		setBus(t, s, "b", w, bv)
		s.Eval()
		got := readBus(t, s, "s", w)
		co, _ := s.PortValue("co")
		want := av + bv
		if got != want&(1<<w-1) {
			t.Fatalf("%d+%d: sum %d, want %d", av, bv, got, want&(1<<w-1))
		}
		if (co == logic.V1) != (want>>w == 1) {
			t.Fatalf("%d+%d: carry %v, want %v", av, bv, co, want>>w)
		}
	}
}

func TestArrayMultiplierFunctional(t *testing.T) {
	const w = 5
	m := gen.NewModule("mul")
	a := m.InputBus("a", w)
	b := m.InputBus("b", w)
	m.OutputBus("p", m.ArrayMultiplier(a, b))
	_, s := mapped(t, m)
	// Exhaustive for 5×5.
	for av := uint64(0); av < 1<<w; av++ {
		for bv := uint64(0); bv < 1<<w; bv++ {
			setBus(t, s, "a", w, av)
			setBus(t, s, "b", w, bv)
			s.Eval()
			if got := readBus(t, s, "p", 2*w); got != av*bv {
				t.Fatalf("%d×%d = %d, want %d", av, bv, got, av*bv)
			}
		}
	}
}

func TestALUFunctional(t *testing.T) {
	const w = 8
	m := gen.NewModule("alu")
	a := m.InputBus("a", w)
	b := m.InputBus("b", w)
	op := m.InputBus("op", 2)
	m.OutputBus("y", m.ALU(a, b, op))
	_, s := mapped(t, m)
	rng := rand.New(rand.NewSource(2))
	// ALU op encoding from the generator: op1=0: op0 ? and : add;
	// op1=1: op0 ? xor : or.
	ref := []func(x, y uint64) uint64{
		func(x, y uint64) uint64 { return (x + y) & (1<<w - 1) },
		func(x, y uint64) uint64 { return x & y },
		func(x, y uint64) uint64 { return x | y },
		func(x, y uint64) uint64 { return x ^ y },
	}
	for trial := 0; trial < 80; trial++ {
		av := rng.Uint64() & (1<<w - 1)
		bv := rng.Uint64() & (1<<w - 1)
		opv := uint64(trial % 4)
		setBus(t, s, "a", w, av)
		setBus(t, s, "b", w, bv)
		setBus(t, s, "op", 2, opv)
		s.Eval()
		if got, want := readBus(t, s, "y", w), ref[opv](av, bv); got != want {
			t.Fatalf("op%d(%d,%d) = %d, want %d", opv, av, bv, got, want)
		}
	}
}

func TestCRCStepMatchesBitwiseReference(t *testing.T) {
	// CRC over 4 data bits with taps {5,12}, 16-bit state, compared with a
	// software LFSR reference.
	const w = 16
	m := gen.NewModule("crc")
	st := m.InputBus("st", w)
	data := m.InputBus("d", 4)
	m.OutputBus("n", m.CRCStep(st, data, []int{5, 12}))
	_, s := mapped(t, m)

	ref := func(state uint64, data uint64, nbits int) uint64 {
		for i := 0; i < nbits; i++ {
			d := (data >> i) & 1
			fb := ((state >> (w - 1)) & 1) ^ d
			state = (state << 1) & (1<<w - 1)
			if fb == 1 {
				state |= 1
				state ^= 1 << 5
				state ^= 1 << 12
			}
			_ = fb
		}
		return state
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sv := rng.Uint64() & (1<<w - 1)
		dv := rng.Uint64() & 0xF
		setBus(t, s, "st", w, sv)
		setBus(t, s, "d", 4, dv)
		s.Eval()
		if got, want := readBus(t, s, "n", w), ref(sv, dv, 4); got != want {
			t.Fatalf("crc(%04x,%x) = %04x, want %04x", sv, dv, got, want)
		}
	}
}

func TestCounterFunctional(t *testing.T) {
	const w = 5
	m := gen.NewModule("cnt")
	en := m.Input("en")
	m.OutputBus("q", m.Counter(w, en))
	_, s := mapped(t, m)
	s.SetInput("en", logic.V1)
	s.Eval()
	for cyc := uint64(0); cyc < 40; cyc++ {
		if got := readBus(t, s, "q", w); got != cyc%(1<<w) {
			t.Fatalf("cycle %d: count %d", cyc, got)
		}
		s.Step()
	}
	// Disable: count freezes.
	s.SetInput("en", logic.V0)
	s.Eval()
	frozen := readBus(t, s, "q", w)
	s.Step()
	s.Step()
	if got := readBus(t, s, "q", w); got != frozen {
		t.Fatalf("disabled counter moved: %d → %d", frozen, got)
	}
}

func TestCircuitAEndToEnd(t *testing.T) {
	// Circuit A is two pipelined 8×8 multipliers + a 16-bit adder with a
	// 3-stage pipeline: acc = a0*b0 + a1*b1 after 3 clock edges.
	spec := gen.CircuitA()
	_, s := mapped(t, spec.Module)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		a0 := rng.Uint64() & 0xFF
		b0 := rng.Uint64() & 0xFF
		a1 := rng.Uint64() & 0xFF
		b1 := rng.Uint64() & 0xFF
		setBus(t, s, "a0", 8, a0)
		setBus(t, s, "b0", 8, b0)
		setBus(t, s, "a1", 8, a1)
		setBus(t, s, "b1", 8, b1)
		s.Eval()
		s.Step() // operands registered
		s.Step() // products registered
		s.Step() // accumulator registered
		want := a0*b0 + a1*b1
		if got := readBus(t, s, "acc", 17); got != want {
			t.Fatalf("%d*%d + %d*%d = %d, want %d", a0, b0, a1, b1, got, want)
		}
	}
}
