package gen

import (
	"fmt"
	"math/rand"
)

// CircuitSpec pairs a generated module with the flow parameters the
// experiments use for it.
type CircuitSpec struct {
	Module *Module
	// ClockSlack multiplies the post-synthesis minimum period to get the
	// target clock: 1.05 = tight (most of the logic stays critical), 1.3 =
	// relaxed.
	ClockSlack float64
}

// CircuitA is the datapath-heavy evaluation circuit: two pipelined 8×8
// array multipliers feeding a 16-bit accumulator, run at a tight clock.
// Long ripple/array carry chains keep a large fraction of cells critical,
// which is what drives the big conventional-SMT area overhead the paper
// reports for its circuit A (164.84%).
func CircuitA() CircuitSpec {
	m := NewModule("circuit_a")
	a0 := m.InputBus("a0", 8)
	b0 := m.InputBus("b0", 8)
	a1 := m.InputBus("a1", 8)
	b1 := m.InputBus("b1", 8)

	// Stage 1: register the operands.
	ra0 := m.DFFBus(a0)
	rb0 := m.DFFBus(b0)
	ra1 := m.DFFBus(a1)
	rb1 := m.DFFBus(b1)

	// Stage 2: multiply, register products.
	p0 := m.DFFBus(m.ArrayMultiplier(ra0, rb0))
	p1 := m.DFFBus(m.ArrayMultiplier(ra1, rb1))

	// Stage 3: accumulate.
	sum, carry := m.RippleAdder(p0, p1)
	acc := m.DFFBus(append(sum, carry))
	m.OutputBus("acc", acc)
	// The clock must clear the MT-cell bounce derate (~8%) or critical
	// cells cannot be gated at all; 1.12 is "as tight as SMT allows".
	return CircuitSpec{Module: m, ClockSlack: 1.18}
}

// CircuitB is the control-heavy evaluation circuit: a 16-bit ALU, a CRC-16
// engine, two counters and a random control cloud, run at a relaxed clock.
// The flop-rich structure raises the always-on leakage floor, reproducing
// the higher SMT leakage percentages of the paper's circuit B.
func CircuitB() CircuitSpec {
	m := NewModule("circuit_b")
	a := m.InputBus("a", 16)
	b := m.InputBus("b", 16)
	op := m.InputBus("op", 2)
	data := m.InputBus("data", 8)
	en := m.Input("en")

	ra := m.DFFBus(a)
	rb := m.DFFBus(b)
	rop := m.DFFBus(op)
	rdata := m.DFFBus(data)
	ren := m.DFF(en)

	alu := m.DFFBus(m.ALU(ra, rb, rop))
	m.OutputBus("alu", alu)

	// CRC-16-CCITT-ish taps (x^16 + x^12 + x^5 + 1): state registers loop
	// through the parallel update network.
	crcRegs := make([]int, 16)
	crcNodes := make([]*Node, 16)
	for i := range crcRegs {
		id := m.DFF(0) // patched below
		crcRegs[i] = id
		crcNodes[i] = m.Nodes[id]
	}
	next := m.CRCStep(crcRegs, rdata, []int{5, 12})
	for i, n := range crcNodes {
		n.Ins = []int{next[i]}
	}
	m.OutputBus("crc", crcRegs)

	cnt0 := m.Counter(16, ren)
	cnt1 := m.Counter(12, m.Not(ren))
	m.OutputBus("cnt0", cnt0)
	m.OutputBus("cnt1", cnt1)

	// Control cloud: shallow random logic over status bits, registered.
	seeds := []int{alu[0], alu[15], crcRegs[0], crcRegs[15], cnt0[7], cnt1[3], ren}
	cloud := m.RandomLogic(seeds, 260, 20050307)
	m.OutputBus("status", m.DFFBus(cloud))
	return CircuitSpec{Module: m, ClockSlack: 1.15}
}

// Large builds the hierarchical large-benchmark tier: a chain of
// registered 16-bit tiles — datapath tiles (8×8 array multipliers),
// arithmetic/CRC tiles and random-logic clouds — grown until the module
// reaches targetInstances generic nodes (mapped instance counts land
// within a few percent of that, since every gate is 2-input). Tile
// boundaries are registered, so combinational depth stays bounded while
// the design scales to hundreds of thousands of instances. Deterministic
// per seed.
func Large(targetInstances int, seed int64) CircuitSpec {
	m := NewModule(fmt.Sprintf("large_%d", targetInstances))
	rng := rand.New(rand.NewSource(seed))
	bus := m.DFFBus(m.InputBus("din", 16))
	for tile := 0; len(m.Nodes)-len(m.Inputs) < targetInstances; tile++ {
		bus = largeTile(m, bus, tile, rng)
	}
	m.OutputBus("dout", m.DFFBus(bus))
	return CircuitSpec{Module: m, ClockSlack: 1.25}
}

// largeTile appends one registered tile reading a 16-bit bus and returns
// its 16-bit registered output bus.
func largeTile(m *Module, in []int, tile int, rng *rand.Rand) []int {
	switch tile % 3 {
	case 0:
		// Datapath tile: 8×8 array multiply, register the product.
		p := m.ArrayMultiplier(in[:8], in[8:16])
		return m.DFFBus(p[:16])
	case 1:
		// Arithmetic/control tile: ripple add plus a 2-step CRC mix.
		sum, carry := m.RippleAdder(in[:8], in[8:16])
		mix := m.CRCStep(in, []int{sum[0], sum[7]}, []int{5, 12})
		out := append(append([]int(nil), sum...), mix[:7]...)
		out = append(out, carry)
		return m.DFFBus(out)
	default:
		// Random cloud tile: a bounded-depth random DAG folded back over
		// the input bus.
		cloud := m.RandomLogic(in, 320, rng.Int63())
		out := make([]int, 16)
		for i := range out {
			out[i] = m.Xor(in[i], cloud[i%len(cloud)])
		}
		return m.DFFBus(out)
	}
}

// Huge builds the ~1M-instance tier: eight parallel Large-style tile
// chains (lanes) fed from a shared registered input bus and XOR-folded
// into one output bus. Lanes decouple at flop boundaries and only meet at
// the fold, so the design is a set of wide, nearly independent registered
// cones — the shape the partition clusterer turns into low-cut shards.
// Deterministic per seed; tile kinds are phase-shifted per lane so the
// mix stays balanced.
func Huge(targetInstances int, seed int64) CircuitSpec {
	m := NewModule(fmt.Sprintf("huge_%d", targetInstances))
	rng := rand.New(rand.NewSource(seed))
	const lanes = 8
	din := m.DFFBus(m.InputBus("din", 16))
	perLane := targetInstances / lanes
	var outs [][]int
	for lane := 0; lane < lanes; lane++ {
		// Re-register the shared bus per lane so the fan-out point is a
		// flop boundary, not a 1M-sink net.
		bus := m.DFFBus(din)
		start := len(m.Nodes)
		for tile := lane; len(m.Nodes)-start < perLane; tile++ {
			bus = largeTile(m, bus, tile, rng)
		}
		outs = append(outs, bus)
	}
	fold := outs[0]
	for _, o := range outs[1:] {
		nf := make([]int, 16)
		for i := range nf {
			nf[i] = m.Xor(fold[i], o[i])
		}
		fold = nf
	}
	m.OutputBus("dout", m.DFFBus(fold))
	return CircuitSpec{Module: m, ClockSlack: 1.25}
}

// SmallTest is a compact design for unit and integration tests: one 4×4
// multiplier pipeline (~120 gates).
func SmallTest() CircuitSpec {
	m := NewModule("small_test")
	a := m.InputBus("a", 4)
	b := m.InputBus("b", 4)
	ra := m.DFFBus(a)
	rb := m.DFFBus(b)
	p := m.DFFBus(m.ArrayMultiplier(ra, rb))
	m.OutputBus("p", p)
	return CircuitSpec{Module: m, ClockSlack: 1.1}
}
