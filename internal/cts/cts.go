// Package cts synthesizes the clock tree: recursive geometric bisection of
// the flop clock pins into clusters, a buffer per cluster, repeated up to a
// single root driven by the clock port. The Selective-MT flow runs it in
// the "routing including CTS" stage of Fig. 4; its per-flop insertion
// delays feed the hold-fixing ECO.
package cts

import (
	"fmt"
	"math"
	"sort"

	"selectivemt/internal/geom"
	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/parasitics"
	"selectivemt/internal/place"
	"selectivemt/internal/tech"
)

// Options controls clock tree synthesis.
type Options struct {
	MaxFanout int    // sinks per clock buffer
	BufName   string // clock buffer cell, e.g. "CKBUF_X4_H"
	Proc      *tech.Process
	PlaceOpts place.Options
}

// DefaultOptions returns sensible CTS options for the process.
func DefaultOptions(proc *tech.Process) Options {
	return Options{
		MaxFanout: 16,
		BufName:   "CKBUF_X4_H",
		Proc:      proc,
		PlaceOpts: place.DefaultOptions(proc.RowHeightUm, proc.SitePitchUm),
	}
}

// Result describes the synthesized tree.
type Result struct {
	Buffers   []*netlist.Instance
	Levels    int
	Sinks     int
	Insertion map[*netlist.Instance]float64 // clock arrival per flop, ns
	MaxSkewNs float64
	MinInsNs  float64
	MaxInsNs  float64
}

// Arrival returns the per-flop clock arrival function for sta.Config.
func (r *Result) Arrival(inst *netlist.Instance) float64 { return r.Insertion[inst] }

// Synthesize builds the clock tree in place on the design. The clock
// port's net must exist; its current flop sinks are re-attached behind the
// new buffer levels.
func Synthesize(d *netlist.Design, clockPort string, opts Options) (*Result, error) {
	port := d.PortByName(clockPort)
	if port == nil || port.Dir != netlist.DirInput {
		return nil, fmt.Errorf("cts: no clock input port %q", clockPort)
	}
	if opts.MaxFanout < 2 {
		return nil, fmt.Errorf("cts: max fanout %d too small", opts.MaxFanout)
	}
	buf := d.Lib.Cell(opts.BufName)
	if buf == nil {
		return nil, fmt.Errorf("cts: no clock buffer cell %q", opts.BufName)
	}
	rootNet := port.Net
	rootNet.IsClock = true

	// Collect flop clock sinks.
	type sink struct {
		ref netlist.PinRef
		pos geom.Point
	}
	var sinks []sink
	for _, s := range rootNet.Sinks {
		if s.Inst == nil {
			continue
		}
		pos := s.Inst.Pos
		sinks = append(sinks, sink{s, pos})
	}
	res := &Result{Insertion: make(map[*netlist.Instance]float64), Sinks: len(sinks)}
	if len(sinks) == 0 {
		return res, nil
	}

	// Bottom-up: cluster current endpoints into groups of ≤MaxFanout,
	// insert one buffer per group, recurse over the buffer inputs.
	type endpoint struct {
		ref netlist.PinRef
		pos geom.Point
	}
	cur := make([]endpoint, len(sinks))
	for i, s := range sinks {
		cur[i] = endpoint(s)
	}
	levels := 0
	for len(cur) > opts.MaxFanout {
		groups := cluster(len(cur), opts.MaxFanout, func(i int) geom.Point { return cur[i].pos })
		var next []endpoint
		for _, g := range groups {
			pts := make([]geom.Point, len(g))
			refs := make([]netlist.PinRef, len(g))
			for i, idx := range g {
				pts[i] = cur[idx].pos
				refs[i] = cur[idx].ref
			}
			center := geom.Centroid(pts)
			b, err := d.NewInstanceAuto("ckbuf", buf)
			if err != nil {
				return nil, err
			}
			place.PlaceNear(d, b, center, opts.PlaceOpts)
			outNet := d.NewNetAuto("clktree")
			outNet.IsClock = true
			if err := d.Connect(b, "Z", outNet); err != nil {
				return nil, err
			}
			for _, ref := range refs {
				if ref.Inst != nil {
					if ref.Inst.Conns[ref.Pin] != nil {
						if err := d.Disconnect(ref.Inst, ref.Pin); err != nil {
							return nil, err
						}
					}
					if err := d.Connect(ref.Inst, ref.Pin, outNet); err != nil {
						return nil, err
					}
				}
			}
			res.Buffers = append(res.Buffers, b)
			next = append(next, endpoint{netlist.PinRef{Inst: b, Pin: "A"}, b.Pos})
		}
		// Detach remaining old endpoints from the root (only first level
		// has them attached); reattach the new buffer inputs to the root
		// temporarily — the next iteration may re-cluster them.
		cur = next
		levels++
	}
	// Attach the final layer directly to the clock root net.
	for _, ep := range cur {
		if ep.ref.Inst == nil {
			continue
		}
		if ep.ref.Inst.Conns[ep.ref.Pin] == nil {
			if err := d.Connect(ep.ref.Inst, ep.ref.Pin, rootNet); err != nil {
				return nil, err
			}
		}
	}
	res.Levels = levels

	// Compute insertion delays by walking from the root.
	ex := &parasitics.SteinerExtractor{Proc: opts.Proc}
	res.MinInsNs, res.MaxInsNs = math.Inf(1), math.Inf(-1)
	var walk func(n *netlist.Net, arr, slew float64)
	walk = func(n *netlist.Net, arr, slew float64) {
		rc := ex.Extract(n)
		delays := rc.SinkDelays()
		for i, s := range n.Sinks {
			var wire float64
			if i < len(delays) {
				wire = delays[i]
			}
			at := arr + wire
			if s.Inst == nil {
				continue
			}
			if s.Inst.Cell.Kind == liberty.KindClockBuf {
				arc := s.Inst.Cell.Arc("A", "Z")
				out := s.Inst.OutputNet()
				if arc == nil || out == nil {
					continue
				}
				load := ex.Extract(out).TotalCap()
				walk(out, at+arc.WorstDelay(slew, load), arc.WorstSlew(slew, load))
			} else if s.Inst.Cell.IsSequential() && s.Pin == "CK" {
				res.Insertion[s.Inst] = at
				res.MinInsNs = math.Min(res.MinInsNs, at)
				res.MaxInsNs = math.Max(res.MaxInsNs, at)
			}
		}
	}
	walk(rootNet, 0, 0.04)
	if math.IsInf(res.MinInsNs, 1) {
		res.MinInsNs, res.MaxInsNs = 0, 0
	}
	res.MaxSkewNs = res.MaxInsNs - res.MinInsNs
	return res, nil
}

// cluster splits indices 0..n-1 into geometric groups of at most maxSize
// by recursive bisection along the wider axis.
func cluster(n, maxSize int, pos func(int) geom.Point) [][]int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var out [][]int
	var split func(idx []int)
	split = func(idx []int) {
		if len(idx) <= maxSize {
			out = append(out, idx)
			return
		}
		pts := make([]geom.Point, len(idx))
		for i, id := range idx {
			pts[i] = pos(id)
		}
		bb := geom.BoundingBox(pts)
		byX := bb.W() >= bb.H()
		sort.SliceStable(idx, func(i, j int) bool {
			if byX {
				return pos(idx[i]).X < pos(idx[j]).X
			}
			return pos(idx[i]).Y < pos(idx[j]).Y
		})
		mid := len(idx) / 2
		left := append([]int(nil), idx[:mid]...)
		right := append([]int(nil), idx[mid:]...)
		split(left)
		split(right)
	}
	split(all)
	return out
}
