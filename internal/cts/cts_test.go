package cts

import (
	"testing"

	"selectivemt/internal/geom"
	"selectivemt/internal/liberty"
	"selectivemt/internal/netlist"
	"selectivemt/internal/place"
	"selectivemt/internal/tech"
)

var (
	sharedLib  *liberty.Library
	sharedProc *tech.Process
)

func lib(t *testing.T) *liberty.Library {
	t.Helper()
	if sharedLib == nil {
		sharedProc = tech.Default130()
		l, err := liberty.Generate(sharedProc, liberty.DefaultBuildOptions(sharedProc))
		if err != nil {
			t.Fatal(err)
		}
		sharedLib = l
	}
	return sharedLib
}

// buildFFArray creates n flops scattered over a core, all clocked by clk.
func buildFFArray(t *testing.T, n int) *netlist.Design {
	t.Helper()
	l := lib(t)
	d := netlist.New("ffarr", l)
	d.AddPort("clk", netlist.DirInput)
	d.AddPort("din", netlist.DirInput)
	clk := d.NetByName("clk")
	din := d.NetByName("din")
	for i := 0; i < n; i++ {
		ff, _ := d.NewInstanceAuto("ff", l.Cell("DFF_X1_L"))
		d.Connect(ff, "CK", clk)
		d.Connect(ff, "D", din)
		q := d.NewNetAuto("q")
		d.Connect(ff, "Q", q)
	}
	if _, err := place.Place(d, place.DefaultOptions(sharedProc.RowHeightUm, sharedProc.SitePitchUm)); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSynthesizeSmall(t *testing.T) {
	// Fewer sinks than max fanout: no buffers needed.
	d := buildFFArray(t, 8)
	opts := DefaultOptions(sharedProc)
	res, err := Synthesize(d, "clk", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buffers) != 0 || res.Levels != 0 {
		t.Errorf("8 sinks under fanout 16 should need no buffers, got %d", len(res.Buffers))
	}
	if res.Sinks != 8 {
		t.Errorf("sinks = %d", res.Sinks)
	}
}

func TestSynthesizeLarge(t *testing.T) {
	d := buildFFArray(t, 150)
	opts := DefaultOptions(sharedProc)
	res, err := Synthesize(d, "clk", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buffers) == 0 {
		t.Fatal("150 sinks need buffers")
	}
	if res.Levels < 1 {
		t.Errorf("levels = %d", res.Levels)
	}
	// Structure: netlist still valid, every flop CK driven.
	if err := d.Validate(netlist.StrictValidate()); err != nil {
		t.Fatal(err)
	}
	// Fanout cap respected on every clock net.
	for _, n := range d.Nets() {
		if !n.IsClock {
			continue
		}
		if len(n.Sinks) > opts.MaxFanout {
			t.Errorf("clock net %s has %d sinks > cap %d", n.Name, len(n.Sinks), opts.MaxFanout)
		}
	}
	// Every flop got an insertion delay.
	for _, inst := range d.Instances() {
		if inst.Cell.IsSequential() {
			if _, ok := res.Insertion[inst]; !ok {
				t.Fatalf("flop %s missing insertion delay", inst.Name)
			}
		}
	}
	if res.MaxSkewNs < 0 {
		t.Errorf("negative skew %v", res.MaxSkewNs)
	}
	if res.MaxInsNs <= 0 {
		t.Errorf("max insertion %v should be positive with buffers", res.MaxInsNs)
	}
	// Skew should be a small fraction of insertion delay for a balanced
	// geometric tree.
	if res.MaxSkewNs > res.MaxInsNs {
		t.Errorf("skew %v exceeds insertion %v", res.MaxSkewNs, res.MaxInsNs)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	d := buildFFArray(t, 4)
	opts := DefaultOptions(sharedProc)
	if _, err := Synthesize(d, "nope", opts); err == nil {
		t.Error("missing clock port accepted")
	}
	bad := opts
	bad.MaxFanout = 1
	if _, err := Synthesize(d, "clk", bad); err == nil {
		t.Error("fanout 1 accepted")
	}
	bad2 := opts
	bad2.BufName = "NOPE"
	if _, err := Synthesize(d, "clk", bad2); err == nil {
		t.Error("unknown buffer cell accepted")
	}
}

func TestClusterProperties(t *testing.T) {
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(float64(i%10)*5, float64(i/10)*5)
	}
	groups := cluster(len(pts), 8, func(i int) geom.Point { return pts[i] })
	seen := make(map[int]bool)
	for _, g := range groups {
		if len(g) > 8 {
			t.Fatalf("group size %d exceeds cap", len(g))
		}
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		for _, id := range g {
			if seen[id] {
				t.Fatalf("index %d in two groups", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("%d of 100 indices covered", len(seen))
	}
}
