package power

import (
	"testing"

	"selectivemt/internal/logic"
	"selectivemt/internal/netlist"
)

func TestOptimizeStandbyVectorImproves(t *testing.T) {
	d := mixed(t)
	// Leakage at the all-zeros vector.
	base, err := Standby(d, StandbyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vec, leak, err := OptimizeStandbyVector(d, StandbyOptions{}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if leak > base.StandbyLeakMW {
		t.Errorf("optimizer made it worse: %v vs %v", leak, base.StandbyLeakMW)
	}
	// The returned vector must actually produce the reported leakage.
	rep, err := Standby(d, StandbyOptions{Inputs: vec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StandbyLeakMW != leak {
		t.Errorf("reported %v, vector reproduces %v", leak, rep.StandbyLeakMW)
	}
	// Every non-clock input assigned.
	for _, name := range []string{"in", "in2"} {
		if _, ok := vec[name]; !ok {
			t.Errorf("input %s unassigned", name)
		}
	}
	if _, ok := vec["clk"]; ok {
		t.Error("clock must not be part of the standby vector")
	}
}

func TestOptimizeStandbyVectorIsLocalOptimum(t *testing.T) {
	d := mixed(t)
	vec, leak, err := OptimizeStandbyVector(d, StandbyOptions{}, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single bit must not improve further.
	for in := range vec {
		flipped := make(map[string]logic.Value, len(vec))
		for k, v := range vec {
			flipped[k] = v
		}
		flipped[in] = flipped[in].Not()
		rep, err := Standby(d, StandbyOptions{Inputs: flipped})
		if err != nil {
			t.Fatal(err)
		}
		if rep.StandbyLeakMW < leak-1e-18 {
			t.Errorf("flipping %s improves %v → %v: not a local optimum",
				in, leak, rep.StandbyLeakMW)
		}
	}
}

func TestOptimizeStandbyVectorWithGating(t *testing.T) {
	d := mixed(t)
	inv := d.Instance("inv")
	d.ReplaceCell(inv, lib(t).Cell("INV_X1_MN"))
	opts := StandbyOptions{
		Gated:    func(i *netlist.Instance) bool { return i == inv },
		HolderOn: func(n *netlist.Net) bool { return n == d.NetByName("n1") },
	}
	_, leak, err := OptimizeStandbyVector(d, opts, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if leak <= 0 {
		t.Error("gated design should still have a floor")
	}
}
