package power

import (
	"testing"

	"selectivemt/internal/liberty"
	"selectivemt/internal/logic"
	"selectivemt/internal/netlist"
	"selectivemt/internal/parasitics"
	"selectivemt/internal/sim"
	"selectivemt/internal/tech"
)

var (
	sharedLib  *liberty.Library
	sharedProc *tech.Process
)

func lib(t *testing.T) *liberty.Library {
	t.Helper()
	if sharedLib == nil {
		sharedProc = tech.Default130()
		l, err := liberty.Generate(sharedProc, liberty.DefaultBuildOptions(sharedProc))
		if err != nil {
			t.Fatal(err)
		}
		sharedLib = l
	}
	return sharedLib
}

// mixed builds: in → LVT INV → n1 → HVT NAND(b=in2) → out, plus a flop.
func mixed(t *testing.T) *netlist.Design {
	t.Helper()
	l := lib(t)
	d := netlist.New("mixed", l)
	d.AddPort("in", netlist.DirInput)
	d.AddPort("in2", netlist.DirInput)
	d.AddPort("clk", netlist.DirInput)
	d.AddPort("out", netlist.DirOutput)
	n1, _ := d.AddNet("n1")
	n2, _ := d.AddNet("n2")
	inv, _ := d.AddInstance("inv", l.Cell("INV_X1_L"))
	nd, _ := d.AddInstance("nd", l.Cell("NAND2_X1_H"))
	ff, _ := d.AddInstance("ff", l.Cell("DFF_X1_L"))
	d.Connect(inv, "A", d.NetByName("in"))
	d.Connect(inv, "ZN", n1)
	d.Connect(nd, "A", n1)
	d.Connect(nd, "B", d.NetByName("in2"))
	d.Connect(nd, "ZN", n2)
	d.Connect(ff, "D", n2)
	d.Connect(ff, "CK", d.NetByName("clk"))
	d.Connect(ff, "Q", d.NetByName("out"))
	return d
}

func TestStandbyUngated(t *testing.T) {
	d := mixed(t)
	rep, err := Standby(d, StandbyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StandbyLeakMW <= 0 {
		t.Fatal("no leakage computed")
	}
	if rep.Breakdown[CatLVT] <= 0 || rep.Breakdown[CatHVT] <= 0 || rep.Breakdown[CatFF] <= 0 {
		t.Errorf("breakdown missing categories: %+v", rep.Breakdown)
	}
	// LVT inverter should out-leak the HVT NAND by a large factor.
	if rep.Breakdown[CatLVT] < 20*rep.Breakdown[CatHVT] {
		t.Errorf("LVT %v not ≫ HVT %v", rep.Breakdown[CatLVT], rep.Breakdown[CatHVT])
	}
}

func TestStandbyStateDependence(t *testing.T) {
	d := mixed(t)
	rep0, err := Standby(d, StandbyOptions{Inputs: map[string]logic.Value{
		"in": logic.V0, "in2": logic.V0}})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Standby(d, StandbyOptions{Inputs: map[string]logic.Value{
		"in": logic.V1, "in2": logic.V1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep0.StandbyLeakMW == rep1.StandbyLeakMW {
		t.Error("leakage should depend on the standby input vector")
	}
}

func TestStandbyGatingReducesLeakage(t *testing.T) {
	d := mixed(t)
	base, err := Standby(d, StandbyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Swap the LVT inverter to the improved MT variant and gate it.
	inv := d.Instance("inv")
	if err := d.ReplaceCell(inv, lib(t).Cell("INV_X1_MN")); err != nil {
		t.Fatal(err)
	}
	gated, err := Standby(d, StandbyOptions{
		Gated:    func(i *netlist.Instance) bool { return i == inv },
		HolderOn: func(n *netlist.Net) bool { return n == d.NetByName("n1") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if gated.StandbyLeakMW >= base.StandbyLeakMW {
		t.Errorf("gating did not reduce leakage: %v vs %v", gated.StandbyLeakMW, base.StandbyLeakMW)
	}
	if gated.Breakdown[CatMT] != 0 {
		t.Errorf("improved MT cell should bill zero to the cell: %v", gated.Breakdown[CatMT])
	}
	if gated.Breakdown[CatLVT] != 0 {
		t.Error("no LVT cells should remain")
	}
}

func TestStandbyWithoutHolderPropagatesX(t *testing.T) {
	// Without a holder, the downstream HVT gate's input is X and the
	// analysis falls back to average leakage rather than crashing.
	d := mixed(t)
	inv := d.Instance("inv")
	d.ReplaceCell(inv, lib(t).Cell("INV_X1_MN"))
	rep, err := Standby(d, StandbyOptions{
		Gated: func(i *netlist.Instance) bool { return i == inv },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StandbyLeakMW <= 0 {
		t.Error("no leakage computed")
	}
}

func TestSwitchAndHolderCategories(t *testing.T) {
	l := lib(t)
	d := mixed(t)
	mte, _ := d.AddNet("MTE")
	mte.IsMTE = true
	d.AddPort("mte_in", netlist.DirInput)
	sw, _ := d.AddInstance("sw", l.SwitchCells()[2])
	d.Connect(sw, "MTE", d.NetByName("mte_in"))
	vg, _ := d.AddNet("vgnd1")
	vg.IsVGND = true
	d.Connect(sw, "VGND", vg)
	h, _ := d.AddInstance("hold", l.Holder())
	d.Connect(h, "A", d.NetByName("n1"))
	d.Connect(h, "MTE", d.NetByName("mte_in"))
	rep, err := Standby(d, StandbyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown[CatSwitch] <= 0 {
		t.Error("switch leakage missing")
	}
	if rep.Breakdown[CatHolder] <= 0 {
		t.Error("holder leakage missing")
	}
}

func TestActiveLeakage(t *testing.T) {
	d := mixed(t)
	mw := ActiveLeakage(d)
	if mw <= 0 {
		t.Fatal("no active leakage")
	}
	rep, _ := Standby(d, StandbyOptions{})
	// With nothing gated, active ≥ standby state-dependent total is not
	// guaranteed per state, but active (state-averaged) should be in the
	// same ballpark: within 5×.
	if mw > 5*rep.StandbyLeakMW || rep.StandbyLeakMW > 5*mw {
		t.Errorf("active %v vs standby %v implausible", mw, rep.StandbyLeakMW)
	}
}

func TestDynamicPower(t *testing.T) {
	d := mixed(t)
	act, err := sim.EstimateActivity(d, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	ex := &parasitics.EstimateExtractor{Proc: sharedProc}
	mw, err := Dynamic(d, act, sharedProc, 2.0, ex)
	if err != nil {
		t.Fatal(err)
	}
	if mw <= 0 {
		t.Fatal("no dynamic power")
	}
	// Faster clock → more power.
	mw2, _ := Dynamic(d, act, sharedProc, 1.0, ex)
	if mw2 <= mw {
		t.Errorf("halving the period should double power: %v vs %v", mw2, mw)
	}
	if _, err := Dynamic(d, act, sharedProc, 0, ex); err == nil {
		t.Error("zero period accepted")
	}
}

func TestCurrents(t *testing.T) {
	d := mixed(t)
	act, err := sim.EstimateActivity(d, 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	ex := &parasitics.EstimateExtractor{Proc: sharedProc}
	cc, err := Currents(d, act, sharedProc, 2.0, ex)
	if err != nil {
		t.Fatal(err)
	}
	inv := d.Instance("inv")
	if cc.PeakMA[inv] <= 0 {
		t.Error("peak current missing")
	}
	if cc.AvgMA[inv] < 0 {
		t.Error("negative average current")
	}
	// Average is far below peak (activity ≪ 1 per cycle).
	if cc.AvgMA[inv] > cc.PeakMA[inv] {
		t.Errorf("avg %v above peak %v", cc.AvgMA[inv], cc.PeakMA[inv])
	}
	if _, err := Currents(d, act, sharedProc, 0, ex); err == nil {
		t.Error("zero period accepted")
	}
}
