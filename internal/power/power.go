// Package power computes the numbers Table 1 of the paper reports: standby
// leakage (state-dependent subthreshold with sleep switches off), active
// leakage, and dynamic power from simulated switching activity. It also
// derives the per-cell discharge currents the sleep-switch sizing uses.
package power

import (
	"fmt"

	"selectivemt/internal/liberty"
	"selectivemt/internal/logic"
	"selectivemt/internal/netlist"
	"selectivemt/internal/parasitics"
	"selectivemt/internal/sim"
	"selectivemt/internal/tech"
)

// Category labels a leakage contribution.
type Category string

// Leakage breakdown categories.
const (
	CatLVT    Category = "lvt-comb"
	CatHVT    Category = "hvt-comb"
	CatMT     Category = "mt-gated"
	CatFF     Category = "flop"
	CatSwitch Category = "switch"
	CatHolder Category = "holder"
	CatClock  Category = "clock"
)

// Report is a power analysis result. All values in mW.
type Report struct {
	StandbyLeakMW float64
	ActiveLeakMW  float64
	DynamicMW     float64
	Breakdown     map[Category]float64
}

// StandbyOptions configures standby leakage analysis.
type StandbyOptions struct {
	// Inputs is the primary-input state held during standby (missing
	// inputs default to 0).
	Inputs map[string]logic.Value
	// Gated reports whether an instance is power-gated (its sleep switch
	// is off). nil means nothing is gated.
	Gated func(*netlist.Instance) bool
	// HolderOn reports whether a net has an output holder forcing it to 1
	// in standby.
	HolderOn func(*netlist.Net) bool
}

// Standby computes the standby leakage of the design.
//
// The standby state is derived by simulation: primary inputs held at the
// given vector, flop states assumed 0 (the registered state a design
// typically parks in), gated cells' outputs held by their holders or
// floating. Each powered cell then leaks per its input state; gated cells
// leak only their residual (embedded-switch) standby figure; shared
// switches leak their own off-state subthreshold.
func Standby(d *netlist.Design, opts StandbyOptions) (*Report, error) {
	s, err := sim.New(d)
	if err != nil {
		return nil, err
	}
	s.ResetState(logic.V0)
	for _, p := range d.Ports() {
		if p.Dir != netlist.DirInput {
			continue
		}
		v := logic.V0
		if opts.Inputs != nil {
			if iv, ok := opts.Inputs[p.Name]; ok {
				v = iv
			}
		}
		if err := s.SetInput(p.Name, v); err != nil {
			return nil, err
		}
	}
	s.EvalStandby(opts.Gated, opts.HolderOn)

	rep := &Report{Breakdown: make(map[Category]float64)}
	add := func(cat Category, mw float64) {
		rep.Breakdown[cat] += mw
		rep.StandbyLeakMW += mw
	}
	for _, inst := range d.Instances() {
		c := inst.Cell
		switch c.Kind {
		case liberty.KindSwitch:
			add(CatSwitch, c.StandbyLeakMW)
		case liberty.KindHolder:
			add(CatHolder, c.StandbyLeakMW)
		case liberty.KindClockBuf:
			add(CatClock, c.StandbyLeakMW)
		case liberty.KindFF:
			add(CatFF, c.LeakageMW) // flops stay powered
		default:
			if opts.Gated != nil && opts.Gated(inst) {
				add(CatMT, c.StandbyLeakMW)
				continue
			}
			leak := c.LeakageAt(s.InstanceInputState(inst))
			if c.Vth == tech.VthLow {
				add(CatLVT, leak)
			} else {
				add(CatHVT, leak)
			}
		}
	}
	return rep, nil
}

// ActiveLeakage sums the powered (MTE asserted) leakage of every instance.
func ActiveLeakage(d *netlist.Design) float64 {
	var mw float64
	for _, inst := range d.Instances() {
		mw += inst.Cell.LeakageMW
	}
	return mw
}

// Dynamic estimates switching power at the given clock frequency (GHz =
// 1/ns): P = Σ_nets toggle·C_net·Vdd²·f, plus a 10% short-circuit adder.
func Dynamic(d *netlist.Design, act *sim.Activity, proc *tech.Process,
	clockPeriodNs float64, ex parasitics.Extractor) (float64, error) {
	if clockPeriodNs <= 0 {
		return 0, fmt.Errorf("power: clock period must be positive")
	}
	f := 1 / clockPeriodNs // GHz = 1/ns
	var mw float64
	for _, n := range d.Nets() {
		tog := act.Toggle[n]
		if tog == 0 {
			continue
		}
		c := ex.Extract(n).TotalCap()
		mw += tog * c * proc.Vdd * proc.Vdd * f
	}
	return mw * 1.1, nil
}

// CellCurrents returns each instance's average and peak discharge current
// in mA: the average weights the cell's output-net switching capacitance by
// its toggle rate; the peak is the library's characterized worst-case. The
// switch-structure optimizer sizes clusters from these.
type CellCurrents struct {
	AvgMA  map[*netlist.Instance]float64
	PeakMA map[*netlist.Instance]float64
}

// Currents computes per-instance discharge currents.
func Currents(d *netlist.Design, act *sim.Activity, proc *tech.Process,
	clockPeriodNs float64, ex parasitics.Extractor) (*CellCurrents, error) {
	if clockPeriodNs <= 0 {
		return nil, fmt.Errorf("power: clock period must be positive")
	}
	cc := &CellCurrents{
		AvgMA:  make(map[*netlist.Instance]float64, d.NumInstances()),
		PeakMA: make(map[*netlist.Instance]float64, d.NumInstances()),
	}
	f := 1 / clockPeriodNs
	for _, inst := range d.Instances() {
		out := inst.OutputNet()
		if out == nil {
			continue
		}
		tog := 0.0
		if act != nil {
			tog = act.Toggle[out]
		}
		c := ex.Extract(out).TotalCap()
		// Average current over a cycle: charge moved per cycle × f.
		// Only falling transitions discharge through the cell's VGND
		// (half the toggles).
		cc.AvgMA[inst] = 0.5 * tog * c * proc.Vdd * f
		cc.PeakMA[inst] = inst.Cell.PeakCurrentMA
	}
	return cc, nil
}
