package power

import (
	"math/rand"

	"selectivemt/internal/logic"
	"selectivemt/internal/netlist"
)

// OptimizeStandbyVector searches for the primary-input vector that
// minimizes standby leakage — the classic companion to MTCMOS: subthreshold
// leakage is state-dependent (stack effect), so the vector the design
// parks in matters for the cells that stay powered (HVT logic, flops).
//
// The search is greedy bit-flipping with random restarts: evaluate the
// current vector, try flipping each input, keep improvements, restart from
// random vectors. Deterministic for a given seed. It returns the best
// vector and its leakage.
func OptimizeStandbyVector(d *netlist.Design, opts StandbyOptions,
	restarts int, seed int64) (map[string]logic.Value, float64, error) {
	var inputs []string
	for _, p := range d.Ports() {
		if p.Dir == netlist.DirInput && !p.IsClock && p.Name != "clk" && p.Name != "MTE" {
			inputs = append(inputs, p.Name)
		}
	}
	eval := func(vec map[string]logic.Value) (float64, error) {
		o := opts
		o.Inputs = vec
		rep, err := Standby(d, o)
		if err != nil {
			return 0, err
		}
		return rep.StandbyLeakMW, nil
	}

	best := make(map[string]logic.Value, len(inputs))
	for _, in := range inputs {
		best[in] = logic.V0
	}
	bestLeak, err := eval(best)
	if err != nil {
		return nil, 0, err
	}
	if restarts < 1 {
		restarts = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < restarts; r++ {
		cur := make(map[string]logic.Value, len(inputs))
		if r == 0 {
			for k, v := range best {
				cur[k] = v
			}
		} else {
			for _, in := range inputs {
				cur[in] = logic.FromBool(rng.Intn(2) == 1)
			}
		}
		curLeak, err := eval(cur)
		if err != nil {
			return nil, 0, err
		}
		improved := true
		for improved {
			improved = false
			for _, in := range inputs {
				cur[in] = cur[in].Not()
				leak, err := eval(cur)
				if err != nil {
					return nil, 0, err
				}
				if leak < curLeak {
					curLeak = leak
					improved = true
				} else {
					cur[in] = cur[in].Not() // revert
				}
			}
		}
		if curLeak < bestLeak {
			bestLeak = curLeak
			best = make(map[string]logic.Value, len(inputs))
			for k, v := range cur {
				best[k] = v
			}
		}
	}
	return best, bestLeak, nil
}
