package sdc

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `
# constraints for circuit A
create_clock -name core_clk -period 2.5 [get_ports clk]
set_input_delay 0.2 -clock core_clk [all_inputs]
set_input_delay 0.35 -clock core_clk [get_ports {mode rst}]
set_output_delay 0.3 -clock core_clk [all_outputs]
set_max_transition 0.4 [current_design]
`

func TestParseSample(t *testing.T) {
	c, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if c.ClockPort != "clk" || c.ClockName != "core_clk" || c.ClockPeriodNs != 2.5 {
		t.Errorf("clock parse wrong: %+v", c)
	}
	if c.InputDelay("anything") != 0.2 {
		t.Errorf("default input delay = %v", c.InputDelay("anything"))
	}
	if c.InputDelay("mode") != 0.35 || c.InputDelay("rst") != 0.35 {
		t.Error("per-port input delay wrong")
	}
	if c.OutputDelay("y") != 0.3 {
		t.Errorf("output delay = %v", c.OutputDelay("y"))
	}
	if c.MaxTransitionNs != 0.4 {
		t.Errorf("max transition = %v", c.MaxTransitionNs)
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if c2.ClockPeriodNs != c.ClockPeriodNs || c2.ClockPort != c.ClockPort {
		t.Error("clock lost in round trip")
	}
	if c2.InputDelay("mode") != c.InputDelay("mode") ||
		c2.InputDelay("zzz") != c.InputDelay("zzz") ||
		c2.OutputDelay("y") != c.OutputDelay("y") ||
		c2.MaxTransitionNs != c.MaxTransitionNs {
		t.Error("delays lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no period", "create_clock [get_ports clk]"},
		{"negative period", "create_clock -period -1 [get_ports clk]"},
		{"unknown command", "create_clock -period 1 [get_ports clk]\nset_false_path -from x"},
		{"bad number", "create_clock -period abc [get_ports clk]"},
		{"delay no target", "create_clock -period 1 [get_ports clk]\nset_input_delay 0.5"},
		{"unterminated bracket", "create_clock -period 1 [get_ports clk"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNoDefaultsZero(t *testing.T) {
	c, err := Parse(strings.NewReader("create_clock -period 1 [get_ports clk]"))
	if err != nil {
		t.Fatal(err)
	}
	if c.InputDelay("x") != 0 || c.OutputDelay("y") != 0 {
		t.Error("missing delays should default to 0")
	}
}
