// Package sdc reads and writes the subset of Synopsys Design Constraints
// the flow needs: clock definition, input/output delays and a transition
// cap. The benchmark generator emits an SDC per circuit, and cmd/smtflow
// accepts one alongside a Verilog netlist.
package sdc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Constraints is a parsed SDC file.
type Constraints struct {
	ClockName     string
	ClockPort     string
	ClockPeriodNs float64
	// InputDelayNs and OutputDelayNs map port names to external delays;
	// the "*" key is the default applied to unlisted ports.
	InputDelayNs    map[string]float64
	OutputDelayNs   map[string]float64
	MaxTransitionNs float64
}

// New returns empty constraints with allocated maps.
func New() *Constraints {
	return &Constraints{
		InputDelayNs:  make(map[string]float64),
		OutputDelayNs: make(map[string]float64),
	}
}

// InputDelay returns the external delay for an input port.
func (c *Constraints) InputDelay(port string) float64 {
	if v, ok := c.InputDelayNs[port]; ok {
		return v
	}
	return c.InputDelayNs["*"]
}

// OutputDelay returns the external margin for an output port.
func (c *Constraints) OutputDelay(port string) float64 {
	if v, ok := c.OutputDelayNs[port]; ok {
		return v
	}
	return c.OutputDelayNs["*"]
}

// Write renders the constraints as SDC.
func Write(w io.Writer, c *Constraints) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	name := c.ClockName
	if name == "" {
		name = c.ClockPort
	}
	p("create_clock -name %s -period %s [get_ports %s]\n", name, ftoa(c.ClockPeriodNs), c.ClockPort)
	writeDelays := func(cmd string, m map[string]float64) {
		for _, port := range sortedKeys(m) {
			target := "[get_ports " + port + "]"
			if port == "*" {
				target = "[all_inputs]"
				if cmd == "set_output_delay" {
					target = "[all_outputs]"
				}
			}
			p("%s %s -clock %s %s\n", cmd, ftoa(m[port]), name, target)
		}
	}
	writeDelays("set_input_delay", c.InputDelayNs)
	writeDelays("set_output_delay", c.OutputDelayNs)
	if c.MaxTransitionNs > 0 {
		p("set_max_transition %s [current_design]\n", ftoa(c.MaxTransitionNs))
	}
	return bw.Flush()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// Parse reads an SDC subset. Unknown commands are rejected (better loud
// than silently ignored constraints).
func Parse(r io.Reader) (*Constraints, error) {
	c := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks := tokenize(line)
		if len(toks) == 0 {
			continue
		}
		switch toks[0] {
		case "create_clock":
			if err := c.parseCreateClock(toks[1:]); err != nil {
				return nil, fmt.Errorf("sdc: line %d: %v", lineNo, err)
			}
		case "set_input_delay":
			if err := c.parseSetDelay(toks[1:], c.InputDelayNs, "all_inputs"); err != nil {
				return nil, fmt.Errorf("sdc: line %d: %v", lineNo, err)
			}
		case "set_output_delay":
			if err := c.parseSetDelay(toks[1:], c.OutputDelayNs, "all_outputs"); err != nil {
				return nil, fmt.Errorf("sdc: line %d: %v", lineNo, err)
			}
		case "set_max_transition":
			if len(toks) < 2 {
				return nil, fmt.Errorf("sdc: line %d: set_max_transition needs a value", lineNo)
			}
			v, err := strconv.ParseFloat(toks[1], 64)
			if err != nil {
				return nil, fmt.Errorf("sdc: line %d: %v", lineNo, err)
			}
			c.MaxTransitionNs = v
		default:
			return nil, fmt.Errorf("sdc: line %d: unsupported command %q", lineNo, toks[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.ClockPeriodNs <= 0 {
		return nil, fmt.Errorf("sdc: no create_clock with a positive period")
	}
	return c, nil
}

// tokenize splits an SDC line, flattening [get_ports {a b}] into marker
// tokens: "[get_ports", names..., "]".
func tokenize(line string) []string {
	line = strings.ReplaceAll(line, "[", " [ ")
	line = strings.ReplaceAll(line, "]", " ] ")
	line = strings.ReplaceAll(line, "{", " ")
	line = strings.ReplaceAll(line, "}", " ")
	return strings.Fields(line)
}

func (c *Constraints) parseCreateClock(toks []string) error {
	i := 0
	for i < len(toks) {
		switch toks[i] {
		case "-period":
			if i+1 >= len(toks) {
				return fmt.Errorf("-period needs a value")
			}
			v, err := strconv.ParseFloat(toks[i+1], 64)
			if err != nil {
				return err
			}
			c.ClockPeriodNs = v
			i += 2
		case "-name":
			if i+1 >= len(toks) {
				return fmt.Errorf("-name needs a value")
			}
			c.ClockName = toks[i+1]
			i += 2
		case "[":
			ports, n, err := parseBracket(toks[i:])
			if err != nil {
				return err
			}
			if len(ports) > 0 {
				c.ClockPort = ports[0]
			}
			i += n
		default:
			return fmt.Errorf("unexpected %q in create_clock", toks[i])
		}
	}
	if c.ClockPeriodNs <= 0 {
		return fmt.Errorf("create_clock needs a positive -period")
	}
	return nil
}

func (c *Constraints) parseSetDelay(toks []string, into map[string]float64, allCmd string) error {
	var value *float64
	var ports []string
	var isAll bool
	i := 0
	for i < len(toks) {
		switch {
		case toks[i] == "-clock":
			i += 2 // clock name; single-clock designs ignore it
		case toks[i] == "-max" || toks[i] == "-min":
			i++
		case toks[i] == "[":
			ps, n, err := parseBracket(toks[i:])
			if err != nil {
				return err
			}
			for _, p := range ps {
				if p == allCmd {
					isAll = true
				} else {
					ports = append(ports, p)
				}
			}
			i += n
		default:
			v, err := strconv.ParseFloat(toks[i], 64)
			if err != nil {
				return fmt.Errorf("bad token %q", toks[i])
			}
			value = &v
			i++
		}
	}
	if value == nil {
		return fmt.Errorf("missing delay value")
	}
	if isAll {
		into["*"] = *value
	}
	for _, p := range ports {
		into[p] = *value
	}
	if !isAll && len(ports) == 0 {
		return fmt.Errorf("no target ports")
	}
	return nil
}

// parseBracket consumes "[ cmd args... ]" and returns the contained names
// (for get_ports the port list; for all_inputs/all_outputs/current_design
// the command itself) and the token count consumed.
func parseBracket(toks []string) ([]string, int, error) {
	if toks[0] != "[" {
		return nil, 0, fmt.Errorf("expected '['")
	}
	var names []string
	for i := 1; i < len(toks); i++ {
		if toks[i] == "]" {
			if len(names) > 0 && names[0] == "get_ports" {
				return names[1:], i + 1, nil
			}
			return names, i + 1, nil
		}
		names = append(names, toks[i])
	}
	return nil, 0, fmt.Errorf("unterminated '['")
}
