package selectivemt

import (
	"bytes"
	"strings"
	"testing"

	"selectivemt/internal/sim"
)

func testEnv(t *testing.T) *Environment {
	t.Helper()
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvironment(t *testing.T) {
	env := testEnv(t)
	if env.Proc == nil || env.Lib == nil {
		t.Fatal("environment incomplete")
	}
	if len(env.Lib.Cells) < 150 {
		t.Errorf("library suspiciously small: %d cells", len(env.Lib.Cells))
	}
}

func TestCompareSmallCircuit(t *testing.T) {
	env := testEnv(t)
	cmp, err := env.Compare(SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	// Orderings that define the paper's result.
	if !(cmp.Improved.StandbyLeakMW < cmp.Conv.StandbyLeakMW) {
		t.Errorf("improved leak %v not below conventional %v",
			cmp.Improved.StandbyLeakMW, cmp.Conv.StandbyLeakMW)
	}
	if !(cmp.Dual.AreaUm2 < cmp.Improved.AreaUm2 && cmp.Improved.AreaUm2 < cmp.Conv.AreaUm2) {
		t.Errorf("area ordering broken: %v / %v / %v",
			cmp.Dual.AreaUm2, cmp.Improved.AreaUm2, cmp.Conv.AreaUm2)
	}
	if cmp.AreaPct(cmp.Dual) != 100 || cmp.LeakagePct(cmp.Dual) != 100 {
		t.Error("normalization wrong")
	}
	// All three remain logically equivalent.
	eq, why, err := sim.Equivalent(cmp.Dual.Design, cmp.Improved.Design, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("dual vs improved differ: %s", why)
	}
}

func TestComparisonFormat(t *testing.T) {
	env := testEnv(t)
	cmp, err := env.Compare(SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	s := cmp.Format()
	for _, want := range []string{"Dual-Vth", "Con.-SMT", "Imp.-SMT", "Area", "Leakage", "100.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
	tbl := FormatTable1([]*Comparison{cmp})
	if !strings.Contains(tbl, "Table 1") || !strings.Contains(tbl, cmp.Circuit) {
		t.Errorf("FormatTable1 wrong:\n%s", tbl)
	}
}

func TestWriteLibraryAndVerilogRoundTrip(t *testing.T) {
	env := testEnv(t)
	var lbuf bytes.Buffer
	if err := env.WriteLibrary(&lbuf); err != nil {
		t.Fatal(err)
	}
	if lbuf.Len() < 10000 {
		t.Errorf("library file suspiciously small: %d bytes", lbuf.Len())
	}

	cfg := env.NewConfig()
	cfg.ClockSlack = SmallTest().ClockSlack
	base, err := env.Synthesize(SmallTest(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var vbuf bytes.Buffer
	if err := WriteVerilog(&vbuf, base); err != nil {
		t.Fatal(err)
	}
	d2, err := env.LoadVerilog(bytes.NewReader(vbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumInstances() != base.NumInstances() {
		t.Errorf("verilog round trip lost instances: %d vs %d",
			d2.NumInstances(), base.NumInstances())
	}
	eq, why, err := sim.Equivalent(base, d2, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("verilog round trip changed logic: %s", why)
	}
}

func TestIndividualTechniqueRunners(t *testing.T) {
	env := testEnv(t)
	cfg := env.NewConfig()
	cfg.ClockSlack = SmallTest().ClockSlack
	base, err := env.Synthesize(SmallTest(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := RunDualVth(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dual.Technique != "Dual-Vth" || dual.AreaUm2 <= 0 {
		t.Error("dual result malformed")
	}
	imp, err := RunImprovedSMT(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Counts.Switches == 0 || imp.Counts.MT == 0 {
		t.Error("improved flow built no gating structure")
	}
	// base must not have been mutated by either run (they clone).
	for _, inst := range base.Instances() {
		if inst.Cell.IsMT() {
			t.Fatal("technique run mutated the base design")
		}
	}
}
