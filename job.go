package selectivemt

import (
	"context"
	"fmt"
	"strings"

	"selectivemt/internal/core"
	"selectivemt/internal/engine"
	"selectivemt/internal/netlist"
	"selectivemt/internal/place"
	"selectivemt/internal/tech"
	"selectivemt/internal/verilog"
)

// This file is the job-spec face of the workflow: one serializable
// description of a flow run (benchmark circuit or uploaded Verilog,
// technique subset, sign-off corners, inrush limit) plus the runner that
// executes it as a job graph on the engine pool. The smtd service
// submits exactly these; a full-set job produces the same Comparison —
// and byte-identical report text — as CompareWithConfig.

// JobSpec describes one flow job. Exactly one of Circuit and Verilog
// must be set. The zero values of the remaining fields mean "default":
// all three techniques, no corner sign-off, no wake-up scheduling.
type JobSpec struct {
	// Circuit names a built-in benchmark: "a", "b", "small" or "large".
	Circuit string `json:"circuit,omitempty"`
	// Verilog is a structural netlist source (the upload path). It is
	// placed and run with the clock constraints below.
	Verilog string `json:"verilog,omitempty"`
	// ClockPort is the Verilog netlist's clock input (default "clk").
	// Benchmarks ignore it: their clock port is part of the circuit.
	ClockPort string `json:"clock_port,omitempty"`
	// ClockPeriodNs pins the clock. Required for Verilog input; for a
	// benchmark it overrides the derived (min-period × slack) clock
	// when positive.
	ClockPeriodNs float64 `json:"clock_period_ns,omitempty"`
	// Techniques selects a subset of "dual", "conventional",
	// "improved" (full names like "dual-vth" work too, as does "all")
	// and may also name any registered custom pipeline (see
	// RegisterPipeline). Empty means the three built-ins, which is what
	// yields a Comparison.
	Techniques []string `json:"techniques,omitempty"`
	// Corners turns on multi-corner sign-off: "all" or corner names
	// (typ, slow, fast-hot, fast-cold).
	Corners []string `json:"corners,omitempty"`
	// InrushLimitMA, when positive, staggers the cluster wake-up under
	// this inrush limit — for the improved technique when selected,
	// otherwise the first selected technique that built clusters.
	InrushLimitMA float64 `json:"inrush_limit_ma,omitempty"`
	// Partitions, when > 1, runs the job's timing analyses on the
	// partition-parallel sharded kernel (bit-identical results; see
	// Config.Partitions). 0 or 1 means monolithic.
	Partitions int `json:"partitions,omitempty"`
	// ShardJobs bounds the sharded kernel's fan-out width per design
	// (<= 0 means GOMAXPROCS). Only meaningful with Partitions > 1.
	ShardJobs int `json:"shard_jobs,omitempty"`
	// AssignJobs bounds the sensitivity lane engine's fan-out width
	// (<= 0 means GOMAXPROCS, capped at the shard count). Only
	// meaningful with Partitions > 1 and the sensitivity strategy; it
	// never changes results, only scheduling.
	AssignJobs int `json:"assign_jobs,omitempty"`
	// Strategy names the Vth-assignment strategy for every Dual-Vth/SMT
	// stage of the job: "greedy" (the paper's slack-ordered pass,
	// the default) or "sensitivity" (leakage-per-slack ordering off the
	// library LUT), plus any strategy a custom build registered. Empty
	// means greedy.
	Strategy string `json:"strategy,omitempty"`
}

// JobOptions configures RunJob's execution (not the work itself — that
// is the JobSpec, which is why only the spec travels over HTTP).
type JobOptions struct {
	// Context cancels jobs not yet started; nil means Background.
	Context context.Context
	// Workers bounds the job's internal concurrency (prepare, then the
	// techniques); <= 0 means GOMAXPROCS, 1 forces a sequential run.
	Workers int
	// Progress receives one event per job state change (Task is
	// "prepare" or the technique name; Index is always 0) and, for
	// technique jobs, one event per pipeline-stage state change with
	// BatchEvent.Stage naming the stage. It is called from one
	// goroutine at a time.
	Progress func(BatchEvent)
}

// JobOutcome is a finished job: the per-technique results in canonical
// order, the paper's comparison when the full set ran, and the rendered
// report text.
type JobOutcome struct {
	Circuit string
	// Results holds one entry per requested technique, in canonical
	// order (Dual-Vth, Conventional-SMT, Improved-SMT).
	Results []*TechniqueResult
	// Comparison is non-nil exactly when all three techniques ran; its
	// Format/FormatTable1 output is byte-identical to a
	// CompareWithConfig run of the same spec.
	Comparison *Comparison
	// Wakeup is the staggered wake-up schedule (InrushLimitMA > 0 and
	// the improved technique produced clusters).
	Wakeup *WakeupSchedule
	// Report is the job's rendered text: FormatTable1 (+ corner
	// sign-off tables) for a full-set job, ReportDesign per technique
	// otherwise.
	Report string
}

// WakeupSchedule re-exports the staggered cluster wake-up schedule.
type WakeupSchedule = core.WakeupSchedule

// ScheduleWakeup packs a result's clusters into the fewest wake-up
// stages whose per-stage inrush stays at or below maxInrushMA.
func (e *Environment) ScheduleWakeup(r *TechniqueResult, maxInrushMA float64) (*WakeupSchedule, error) {
	return core.ScheduleWakeup(r.Clusters, e.Proc, maxInrushMA)
}

// EffectiveJobs reports the worker count a user-facing -jobs value
// resolves to: anything <= 0 means GOMAXPROCS. CLIs reject negative
// values up front and use this to report the effective bound.
func EffectiveJobs(n int) int { return engine.NormalizeWorkers(n) }

// BenchmarkCircuit resolves a benchmark name ("a", "b", "small", "large",
// "huge") to its spec — the one resolver every CLI and the smtd service
// share.
func BenchmarkCircuit(name string) (CircuitSpec, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "a":
		return CircuitA(), nil
	case "b":
		return CircuitB(), nil
	case "small":
		return SmallTest(), nil
	case "large":
		return CircuitLarge(), nil
	case "huge":
		return CircuitHuge(), nil
	}
	return CircuitSpec{}, fmt.Errorf("selectivemt: unknown circuit %q (want a, b, small, large or huge)", name)
}

// jobTechniques is the canonical technique table: JSON/CLI keys and
// the registered pipeline names (matching TechniqueResult.Technique),
// in Table-1 column order. The runners themselves live in the pipeline
// registry.
var jobTechniques = []struct {
	key     string
	display string
}{
	{"dual", "Dual-Vth"},
	{"conventional", "Conventional-SMT"},
	{"improved", "Improved-SMT"},
}

// ParseTechniques canonicalizes a technique list: short keys ("dual"),
// full names ("dual-vth", "improved-smt") and "all" are accepted in
// any order and case, as is the name of any registered custom pipeline.
// The result is the canonical subset in Table-1 order followed by the
// custom pipelines in first-seen order. Empty input selects the three
// built-ins.
func ParseTechniques(names []string) ([]string, error) {
	selected := make(map[string]bool, len(jobTechniques))
	var custom []string
	for _, raw := range names {
		name := strings.ToLower(strings.TrimSpace(raw))
		switch name {
		case "":
			continue
		case "all":
			for _, t := range jobTechniques {
				selected[t.key] = true
			}
			continue
		}
		found := false
		for _, t := range jobTechniques {
			if name == t.key || name == strings.ToLower(t.display) {
				selected[t.key] = true
				found = true
				break
			}
		}
		if found {
			continue
		}
		if p, ok := core.LookupPipeline(name); ok {
			key := strings.ToLower(p.Name())
			if !selected[key] {
				selected[key] = true
				custom = append(custom, key)
			}
			continue
		}
		return nil, fmt.Errorf("selectivemt: unknown technique %q (want dual, conventional, improved, all, or a registered pipeline: %s)",
			raw, strings.Join(Pipelines(), ", "))
	}
	var out []string
	for _, t := range jobTechniques {
		if len(selected) == 0 || selected[t.key] {
			out = append(out, t.key)
		}
	}
	return append(out, custom...), nil
}

// techniqueDisplay resolves a ParseTechniques key to the technique's
// registered pipeline name.
func techniqueDisplay(key string) string {
	for _, t := range jobTechniques {
		if key == t.key {
			return t.display
		}
	}
	if p, ok := core.LookupPipeline(key); ok {
		return p.Name()
	}
	return key
}

// parseCornerNames maps a JobSpec.Corners list to tech corners ("all"
// anywhere in the list selects all four).
func parseCornerNames(names []string) ([]Corner, error) {
	var out []Corner
	seen := make(map[Corner]bool)
	for _, raw := range names {
		name := strings.ToLower(strings.TrimSpace(raw))
		if name == "" {
			continue
		}
		if name == "all" {
			return AllCorners(), nil
		}
		c, err := tech.ParseCorner(name)
		if err != nil {
			return nil, err
		}
		if seen[c] {
			return nil, fmt.Errorf("selectivemt: corner %s listed twice", c)
		}
		seen[c] = true
		out = append(out, c)
	}
	return out, nil
}

// Validate checks a spec without running it: technique/corner names,
// the circuit-vs-verilog choice, clock and inrush constraints. RunJob
// applies exactly this check first, so a front end (the smtd submit
// handler) can reject a bad spec synchronously and be certain an
// accepted one will not fail validation later.
func (s JobSpec) Validate() error {
	if _, err := ParseTechniques(s.Techniques); err != nil {
		return err
	}
	if _, err := parseCornerNames(s.Corners); err != nil {
		return err
	}
	if _, err := ParseStrategy(s.Strategy); err != nil {
		return err
	}
	if s.InrushLimitMA < 0 {
		return fmt.Errorf("selectivemt: negative inrush limit %g mA", s.InrushLimitMA)
	}
	if s.Partitions < 0 {
		return fmt.Errorf("selectivemt: negative partition count %d", s.Partitions)
	}
	if s.ShardJobs < 0 {
		return fmt.Errorf("selectivemt: negative shard-jobs %d", s.ShardJobs)
	}
	if s.AssignJobs < 0 {
		return fmt.Errorf("selectivemt: negative assign-jobs %d", s.AssignJobs)
	}
	switch {
	case s.Circuit != "" && s.Verilog != "":
		return fmt.Errorf("selectivemt: job lists both a benchmark circuit and a Verilog netlist")
	case s.Circuit != "":
		if _, err := BenchmarkCircuit(s.Circuit); err != nil {
			return err
		}
	case s.Verilog != "":
		if s.ClockPeriodNs <= 0 {
			return fmt.Errorf("selectivemt: Verilog job needs a positive clock_period_ns")
		}
	default:
		return fmt.Errorf("selectivemt: job needs a circuit name or a Verilog netlist")
	}
	return nil
}

// RunJob executes one job spec as a job graph on the engine pool:
// prepare (synthesis or Verilog parse + placement), then the selected
// techniques, then report rendering. Cancellation via opts.Context
// skips stages not yet started; the error then wraps the context's
// cause.
func (e *Environment) RunJob(spec JobSpec, opts JobOptions) (*JobOutcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	techKeys, _ := ParseTechniques(spec.Techniques)
	corners, _ := parseCornerNames(spec.Corners)

	cfg := e.NewConfig()
	cfg.Corners = corners
	cfg.Partitions = spec.Partitions
	cfg.ShardJobs = spec.ShardJobs
	cfg.AssignJobs = spec.AssignJobs
	// Validate vouched for the name; store the canonical form so stage
	// reports and downstream lookups agree on spelling.
	cfg.Strategy, _ = ParseStrategy(spec.Strategy)

	var name string
	var prepare func() (*Design, error)
	switch {
	case spec.Circuit != "":
		// Validate vouched for the name.
		cs, _ := BenchmarkCircuit(spec.Circuit)
		name = cs.Module.Name
		cfg.ClockSlack = cs.ClockSlack
		if spec.ClockPeriodNs > 0 {
			cfg.ClockPeriodNs = spec.ClockPeriodNs
		}
		prepare = func() (*Design, error) { return core.PrepareBase(cs.Module, cfg) }
	default:
		if spec.ClockPort != "" {
			cfg.ClockPort = spec.ClockPort
		}
		cfg.ClockPeriodNs = spec.ClockPeriodNs
		src := spec.Verilog
		prepare = func() (*Design, error) {
			d, err := verilog.Parse(strings.NewReader(src), e.Lib)
			if err != nil {
				return nil, err
			}
			if _, err := place.Place(d, cfg.PlaceOpts); err != nil {
				return nil, err
			}
			return d, nil
		}
	}

	emit := serializedProgress(opts.Progress)
	circuit := name
	if circuit == "" {
		// Verilog upload: the module name is only known after the
		// prepare stage parses it.
		circuit = "verilog"
	}

	// One job graph: prepare, then each selected technique pipeline on
	// it. The engine job's ctx flows into the pipeline, so a
	// cancellation lands mid-technique instead of waiting for the next
	// job boundary.
	var base *netlist.Design
	jobs := []engine.Job{{
		Name: "prepare",
		Run: func(context.Context) (any, error) {
			d, err := prepare()
			if err != nil {
				return nil, err
			}
			base = d
			return d, nil
		},
	}}
	type techJob struct {
		key, display string
		index        int // index into the engine job slice
	}
	var selected []techJob
	for _, k := range techKeys {
		display := techniqueDisplay(k)
		selected = append(selected, techJob{key: k, display: display, index: len(jobs)})
		jobs = append(jobs, engine.Job{
			Name: display,
			Deps: []int{0},
			Run: func(ctx context.Context) (any, error) {
				return core.RunRegistered(ctx, display, base, cfg, stageObserver(emit, circuit, 0, display))
			},
		})
	}

	var progress func(engine.Event)
	if emit != nil {
		progress = func(ev engine.Event) {
			task := ev.Name
			if ev.Job == 0 {
				task = "prepare"
			}
			emit(BatchEvent{
				Circuit: circuit, Task: task,
				State: ev.State, Err: ev.Err, Elapsed: ev.Elapsed,
			})
		}
	}
	res, err := engine.Run(opts.Context, jobs, engine.Options{Workers: opts.Workers, Progress: progress})
	if err != nil {
		return nil, fmt.Errorf("selectivemt: job: %w", err)
	}

	// base.Name covers both paths: the benchmark module's name, or the
	// parsed Verilog module's.
	out := &JobOutcome{Circuit: base.Name}
	byKey := make(map[string]*TechniqueResult, len(selected))
	for _, tj := range selected {
		r := res[tj.index].Value.(*TechniqueResult)
		out.Results = append(out.Results, r)
		byKey[tj.key] = r
	}
	if byKey["dual"] != nil && byKey["conventional"] != nil && byKey["improved"] != nil {
		out.Comparison = &Comparison{
			Circuit:  out.Circuit,
			Dual:     byKey["dual"],
			Conv:     byKey["conventional"],
			Improved: byKey["improved"],
		}
	}
	if spec.InrushLimitMA > 0 {
		// The schedule targets the improved technique when it ran;
		// otherwise the first selected technique that built a clustered
		// switch structure (custom improved-flow variants qualify).
		gated := byKey["improved"]
		if gated == nil || len(gated.Clusters) == 0 {
			gated = nil
			for _, r := range out.Results {
				if len(r.Clusters) > 0 {
					gated = r
					break
				}
			}
		}
		if gated != nil && len(gated.Clusters) > 0 {
			sched, err := e.ScheduleWakeup(gated, spec.InrushLimitMA)
			if err != nil {
				return nil, err
			}
			out.Wakeup = sched
		}
	}
	if err := e.renderJobReport(out, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// renderJobReport fills JobOutcome.Report: the Table-1 comparison (plus
// corner sign-off tables) when the full technique set ran — exactly the
// text the table1 CLI and FormatTable1/FormatCornerReports produce — or
// the read-only ReportDesign of each technique's finished netlist for a
// subset job.
func (e *Environment) renderJobReport(out *JobOutcome, cfg *Config) error {
	var b strings.Builder
	if out.Comparison != nil {
		b.WriteString(FormatTable1([]*Comparison{out.Comparison}))
		if reps := FormatCornerReports([]*Comparison{out.Comparison}); reps != "" {
			b.WriteByte('\n')
			b.WriteString(reps)
		}
		// Custom pipelines that ran alongside the canonical three get
		// their own sections after the comparison, corner sign-off
		// included — same rendering as the subset branch below.
		for _, r := range out.Results {
			if r == out.Comparison.Dual || r == out.Comparison.Conv || r == out.Comparison.Improved {
				continue
			}
			rcfg := *cfg
			rcfg.Corners = nil
			text, err := e.ReportDesign(r.Design, &rcfg, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "== %s ==\n%s", r.Technique, text)
			if r.CornerReport != nil {
				b.WriteString(r.CornerReport.Format())
				b.WriteByte('\n')
			}
		}
	} else {
		for _, r := range out.Results {
			// The sign-off already ran inside the technique flow; the
			// read-only report must not repeat it.
			rcfg := *cfg
			rcfg.Corners = nil
			text, err := e.ReportDesign(r.Design, &rcfg, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "== %s ==\n%s", r.Technique, text)
			if r.CornerReport != nil {
				b.WriteString(r.CornerReport.Format())
				b.WriteByte('\n')
			}
		}
	}
	if out.Wakeup != nil {
		fmt.Fprintf(&b, "wake-up schedule: %d stages (peak %.2f mA, simultaneous %.2f mA), total %.3f ns\n",
			len(out.Wakeup.Groups), out.Wakeup.PeakInrushMA,
			out.Wakeup.SimultaneousInrushMA, out.Wakeup.TotalWakeupNs)
	}
	out.Report = b.String()
	return nil
}
